// Crash-fault recovery tests (extension): fail-stop crashes destroy peer
// state, acked delivery retransmits losses, replicas restore ranks, and
// the mass audit guarantees no emitted contribution is silently lost.

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "graph/generator.hpp"
#include "p2p/replication.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/dense_oracle.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/mass_audit.hpp"
#include "pagerank/quality.hpp"
#include "sim/experiment.hpp"

#include <vector>

namespace dprank {
namespace {

PagerankOptions opts(double eps) {
  PagerankOptions o;
  o.epsilon = eps;
  return o;
}

// ---- MassAuditor unit tests ----

TEST(MassAuditor, StartsConservedAtInitialState) {
  const Digraph g = figure2_graph();
  MassAuditor auditor(g, 1.0);
  // The engine's initial contribution cells are exactly the ledger's
  // initial expectation.
  std::vector<double> effective(g.num_edges(), 0.0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto deg = g.out_degree(u);
    for (EdgeId e = g.out_edge_begin(u); e < g.out_edge_end(u); ++e) {
      effective[e] = 1.0 / static_cast<double>(deg);
    }
  }
  const auto report = auditor.audit(effective);
  EXPECT_TRUE(report.conserved(1e-9));
  EXPECT_DOUBLE_EQ(report.mass_ratio, 1.0);
  EXPECT_EQ(report.leaking_edges, 0u);
}

TEST(MassAuditor, DetectsAndLocatesLeaks) {
  const Digraph g = figure2_graph();
  MassAuditor auditor(g, 1.0);
  std::vector<double> effective(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    auditor.on_emit(e, 0.25);
    effective[e] = 0.25;
  }
  effective[2] = 0.0;  // a lost contribution
  const auto report = auditor.audit(effective);
  EXPECT_FALSE(report.conserved(1e-9));
  EXPECT_EQ(report.leaking_edges, 1u);
  EXPECT_NEAR(report.leaked, 0.25, 1e-15);
  EXPECT_LT(report.mass_ratio, 1.0);
  EXPECT_EQ(auditor.leaking_edges(effective), (std::vector<EdgeId>{2}));
  EXPECT_DOUBLE_EQ(auditor.expected(2), 0.25);
}

TEST(MassAuditor, KnownLossIsACheapCounter) {
  const Digraph g = figure2_graph();
  MassAuditor auditor(g, 1.0);
  auditor.on_known_loss(0.5);
  auditor.on_known_loss(-0.25);  // magnitudes accumulate
  EXPECT_DOUBLE_EQ(auditor.known_lost(), 0.75);
  EXPECT_EQ(auditor.known_loss_events(), 2u);
}

TEST(MassAuditor, RejectsMismatchedEffectiveVector) {
  const Digraph g = figure2_graph();
  MassAuditor auditor(g, 1.0);
  const std::vector<double> wrong(g.num_edges() + 1, 0.0);
  EXPECT_THROW((void)auditor.audit(wrong), std::invalid_argument);
  EXPECT_THROW((void)auditor.leaking_edges(wrong), std::invalid_argument);
}

// ---- engine-level recovery ----

TEST(Recovery, AuditAloneMatchesPlainRun) {
  // With no faults the audit must observe perfect conservation, change
  // nothing, and cost no repairs.
  const Digraph g = paper_graph(1500, 31);
  const auto p = Placement::random(1500, 30, 31);

  DistributedPagerank plain(g, p, opts(1e-4));
  ASSERT_TRUE(plain.run().converged);

  DistributedPagerank audited(g, p, opts(1e-4));
  audited.enable_mass_audit();
  const auto run = audited.run();
  ASSERT_TRUE(run.converged);
  EXPECT_DOUBLE_EQ(run.mass_ratio, 1.0);
  EXPECT_EQ(run.repair_rounds, 0u);
  EXPECT_EQ(audited.ranks(), plain.ranks());
}

TEST(Recovery, CrashDestroysStateAndRecoveryRebuildsIt) {
  const Digraph g = paper_graph(2000, 32);
  const auto p = Placement::random(2000, 40, 32);
  const auto ref = centralized_pagerank(g, 0.85, 1e-12).ranks;

  DistributedPagerank engine(g, p, opts(1e-4));
  FaultPlan plan({.crashes = {{.pass = 2, .peer = 3}, {.pass = 5, .peer = 17}},
                  .crash_downtime_passes = 2,
                  .seed = 33});
  engine.attach_fault_plan(plan);
  engine.enable_mass_audit();
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  EXPECT_EQ(engine.crashes(), 2u);
  EXPECT_GT(engine.recovered_docs(), 0u);
  EXPECT_GT(engine.recovery_messages(), 0u);
  EXPECT_NEAR(run.mass_ratio, 1.0, 1e-9);
  // The mass auditor saw the crash wipe the stored contributions.
  ASSERT_NE(engine.mass_auditor(), nullptr);
  EXPECT_GT(engine.mass_auditor()->known_loss_events(), 0u);
  const auto q = summarize_quality(engine.ranks(), ref);
  EXPECT_LT(q.p50, 0.05);
}

TEST(Recovery, ReplicasRestoreRanksAfterCrash) {
  const Digraph g = paper_graph(2000, 34);
  const auto p = Placement::random(2000, 40, 34);
  const auto replicas = ReplicaRegistry::uniform(p, 1, 34);

  DistributedPagerank engine(g, p, opts(1e-4));
  FaultPlan plan({.crashes = {{.pass = 3, .peer = 7}}, .seed = 35});
  engine.attach_fault_plan(plan);
  engine.attach_replicas(replicas);
  engine.enable_mass_audit();
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  // Every document on the crashed peer had a replica to restore from.
  EXPECT_GT(engine.replica_restores(), 0u);
  EXPECT_EQ(engine.replica_restores(), engine.recovered_docs());
  EXPECT_NEAR(run.mass_ratio, 1.0, 1e-9);
}

TEST(Recovery, UnackedCrashLossesAreRepairedByTheAudit) {
  // Without acked delivery a drop leaks rank mass silently; the audit
  // finds the leaking edges at quiescence and re-injects them, so the
  // run still terminates fully accounted.
  const Digraph g = paper_graph(2000, 36);
  const auto p = Placement::random(2000, 40, 36);

  DistributedPagerank engine(g, p, opts(1e-4));
  FaultPlan plan({.drop_probability = 0.1,
                  .crashes = {{.pass = 2, .peer = 5}},
                  .seed = 37});
  engine.attach_fault_plan(plan);
  engine.enable_mass_audit();
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  EXPECT_GT(run.repair_rounds, 0u);
  EXPECT_GT(engine.repair_messages(), 0u);
  EXPECT_NEAR(run.mass_ratio, 1.0, 1e-9);
}

TEST(Recovery, PartitionParksCrossCutTrafficThenHeals) {
  const Digraph g = paper_graph(2000, 38);
  const auto p = Placement::random(2000, 40, 38);

  DistributedPagerank engine(g, p, opts(1e-4));
  FaultPlan plan({.partitions = {{.start_pass = 1,
                                  .duration_passes = 4,
                                  .fraction = 0.5}},
                  .seed = 39});
  engine.attach_fault_plan(plan);
  engine.enable_mass_audit();
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  // Cross-cut sends were parked in the outbox rather than lost...
  EXPECT_GT(engine.partition_deferrals(), 0u);
  EXPECT_GT(engine.outbox_peak(), 0u);
  // ...and delivered after the heal: nothing leaked.
  EXPECT_NEAR(run.mass_ratio, 1.0, 1e-9);
  EXPECT_EQ(run.repair_rounds, 0u);
}

TEST(Recovery, OutboxStateStaysLinearInOutlinks) {
  // §3.1: "the amount of state saved scales linearly with the sum of
  // outlinks in all documents in a peer" — the per-edge outbox can never
  // exceed one slot per graph edge, whatever the fault pressure.
  const Digraph g = paper_graph(1500, 40);
  const auto p = Placement::random(1500, 30, 40);
  ChurnSchedule churn(30, 0.5, 40);

  DistributedPagerank engine(g, p, opts(1e-3));
  FaultPlan plan({.drop_probability = 0.1,
                  .crashes = {{.pass = 2, .peer = 1}},
                  .seed = 41});
  engine.attach_fault_plan(plan);
  engine.enable_mass_audit();
  ASSERT_TRUE(engine.run(&churn).converged);
  EXPECT_GT(engine.outbox_peak(), 0u);
  EXPECT_LE(engine.outbox_peak(), g.num_edges());
}

TEST(Recovery, SessionChurnWithCrashesMatchesDenseOracle) {
  // Property test: long offline sessions (ChurnModel::kSessions) plus
  // crash faults and lossy acked delivery still converge to the
  // dense-oracle fixed point within the usual quality envelope.
  const Digraph g = paper_graph(800, 42);
  const auto p = Placement::random(800, 20, 42);
  const auto oracle = dense_pagerank_oracle(g, 0.85);
  const auto replicas = ReplicaRegistry::uniform(p, 1, 42);
  ChurnSchedule churn(20, 0.6, 42, ChurnModel::kSessions,
                      /*mean_online_passes=*/8.0);

  DistributedPagerank engine(g, p, opts(1e-4));
  FaultPlan plan({.drop_probability = 0.05,
                  .crashes = {{.pass = 4, .peer = 2},
                              {.pass = 9, .peer = 11},
                              {.pass = 15, .peer = 2}},
                  .crash_downtime_passes = 3,
                  .acked_delivery = true,
                  .seed = 43});
  engine.attach_fault_plan(plan);
  engine.attach_replicas(replicas);
  engine.enable_mass_audit();
  const auto run = engine.run(&churn);
  ASSERT_TRUE(run.converged);
  EXPECT_NEAR(run.mass_ratio, 1.0, 1e-9);
  const auto q = summarize_quality(engine.ranks(), oracle);
  EXPECT_LT(q.p50, 0.05);
  EXPECT_LT(q.avg, 0.10);
  EXPECT_GT(q.fraction_within_1pct, 0.25);
}

// ---- acceptance: the §4.2 standard experiment under the full plan ----

TEST(Recovery, StandardExperimentFullFaultPlanConvergesMassExact) {
  // ISSUE acceptance criterion: 5% drop, 5% duplicate, reorder window 4,
  // two crashes on the §4.2 standard experiment (10k docs, 500 peers)
  // must converge with the audited rank mass within 1e-6 of 1.0 —
  // deterministically.
  const StandardExperiment exp({.num_docs = 10'000, .num_peers = 500});
  StandardExperiment::FaultRunOptions fo;
  fo.plan.drop_probability = 0.05;
  fo.plan.duplicate_probability = 0.05;
  fo.plan.reorder_probability = 0.25;
  fo.plan.reorder_window = 4;
  fo.plan.crashes = {{.pass = 3, .peer = 7}, {.pass = 6, .peer = 123}};
  fo.plan.acked_delivery = true;
  fo.plan.seed = 4242;
  fo.replicas_per_doc = 1;

  const auto a = exp.run_distributed_faulty(fo);
  ASSERT_TRUE(a.run.converged);
  EXPECT_NEAR(a.run.mass_ratio, 1.0, 1e-6);
  EXPECT_EQ(a.crashes, 2u);
  EXPECT_GT(a.recovered_docs, 0u);
  EXPECT_GT(a.dropped, 0u);
  EXPECT_GT(a.duplicated, 0u);

  // Deterministic replay: the identical seed reproduces the run exactly.
  const auto b = exp.run_distributed_faulty(fo);
  EXPECT_EQ(a.run.passes, b.run.passes);
  EXPECT_EQ(a.messages, b.messages);
  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t i = 0; i < a.ranks.size(); ++i) {
    ASSERT_EQ(a.ranks[i], b.ranks[i]) << "doc " << i;
  }

  // Accuracy stays in the §4.4 envelope relative to the reference solve.
  const auto q = summarize_quality(a.ranks, exp.reference_ranks());
  EXPECT_LT(q.p50, 0.05);
}

}  // namespace
}  // namespace dprank
