#include "net/ip_cache.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dprank {
namespace {

TEST(IpCache, FirstSendRoutesThenCaches) {
  ChordRing ring(64);
  IpCache cache(true);
  Rng rng(3);
  const Guid key{rng(), rng()};
  const PeerId src = 0;
  const PeerId owner = ring.successor_of_key(key);
  ASSERT_NE(owner, src) << "test assumes a remote key; reseed if flaky";

  const auto first = cache.send_hops(src, key, ring);
  EXPECT_GE(first, 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  const auto second = cache.send_hops(src, key, ring);
  EXPECT_EQ(second, 1u);  // direct: address cached
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(IpCache, CacheIsPerSourcePeer) {
  ChordRing ring(64);
  IpCache cache(true);
  Rng rng(5);
  const Guid key{rng(), rng()};
  (void)cache.send_hops(0, key, ring);
  // A different source has not learned the address.
  (void)cache.send_hops(1, key, ring);
  EXPECT_EQ(cache.misses(), 2u);
}

TEST(IpCache, SameDestinationDifferentKeysHits) {
  // Caching is per destination peer: any key owned by an already-known
  // peer goes direct.
  ChordRing ring(4);  // few peers => many keys per peer
  IpCache cache(true);
  Rng rng(7);
  std::uint64_t direct = 0;
  for (int i = 0; i < 200; ++i) {
    const Guid key{rng(), rng()};
    if (ring.successor_of_key(key) == 0) continue;  // local to src 0
    const auto hops = cache.send_hops(0, key, ring);
    if (hops == 1 && cache.hits() > 0) ++direct;
  }
  // After at most 3 misses (3 remote peers) everything is direct.
  EXPECT_EQ(cache.misses(), 3u);
  EXPECT_GT(direct, 100u);
}

TEST(IpCache, DisabledModelsFreenetRouting) {
  ChordRing ring(64);
  IpCache cache(false);  // anonymity honored: no caching
  Rng rng(9);
  const Guid key{rng(), rng()};
  const auto first = cache.send_hops(0, key, ring);
  const auto second = cache.send_hops(0, key, ring);
  EXPECT_EQ(first, second);  // every message individually routed
  EXPECT_EQ(cache.entries(), 0u);
}

TEST(IpCache, LocalKeyIsFree) {
  ChordRing ring(8);
  IpCache cache(true);
  // A key owned by the sender costs no hops.
  const PeerId src = 3;
  const Guid own_key = ring.id_of(src);
  EXPECT_EQ(cache.send_hops(src, own_key, ring), 0u);
}

TEST(IpCache, InvalidatePeerForgetsAddresses) {
  ChordRing ring(16);
  IpCache cache(true);
  Rng rng(11);
  // Find a key owned by a peer other than the sender (peer 0).
  Guid key{rng(), rng()};
  while (ring.successor_of_key(key) == 0u) key = Guid{rng(), rng()};
  const PeerId owner = ring.successor_of_key(key);
  ASSERT_NE(owner, 0u);
  (void)cache.send_hops(0, key, ring);
  EXPECT_EQ(cache.entries(), 1u);
  cache.invalidate_peer(owner);
  EXPECT_EQ(cache.entries(), 0u);
  (void)cache.send_hops(0, key, ring);
  EXPECT_EQ(cache.misses(), 2u);  // must re-route
}

TEST(IpCache, InvalidateAlsoDropsDepartedPeersOwnCache) {
  ChordRing ring(16);
  IpCache cache(true);
  Rng rng(13);
  // Peer 2 learns some addresses.
  for (int i = 0; i < 20; ++i) {
    (void)cache.send_hops(2, Guid{rng(), rng()}, ring);
  }
  ASSERT_GT(cache.entries(), 0u);
  cache.invalidate_peer(2);
  EXPECT_EQ(cache.entries(), 0u);
}

}  // namespace
}  // namespace dprank
