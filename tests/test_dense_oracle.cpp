// The dense oracle is the independent ground truth: it shares no
// iteration machinery with any engine. These tests first pin the oracle
// itself to hand-solvable systems, then hold every engine in the
// library against it.

#include "pagerank/dense_oracle.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "pagerank/async_runtime.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/event_engine.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

TEST(SolveDense, IdentitySystem) {
  const auto x = solve_dense({1, 0, 0, 1}, {3, 7});
  ASSERT_EQ(x.size(), 2u);
  EXPECT_NEAR(x[0], 3, 1e-12);
  EXPECT_NEAR(x[1], 7, 1e-12);
}

TEST(SolveDense, HandSolvable2x2) {
  // 2x + y = 5; x + 3y = 10  =>  x = 1, y = 3.
  const auto x = solve_dense({2, 1, 1, 3}, {5, 10});
  EXPECT_NEAR(x[0], 1, 1e-12);
  EXPECT_NEAR(x[1], 3, 1e-12);
}

TEST(SolveDense, RequiresPivoting) {
  // Leading zero forces a row swap: 0x + y = 2; x + y = 3.
  const auto x = solve_dense({0, 1, 1, 1}, {2, 3});
  EXPECT_NEAR(x[0], 1, 1e-12);
  EXPECT_NEAR(x[1], 2, 1e-12);
}

TEST(SolveDense, SingularRejected) {
  EXPECT_THROW(solve_dense({1, 2, 2, 4}, {1, 2}), std::runtime_error);
}

TEST(SolveDense, SizeValidated) {
  EXPECT_THROW(solve_dense({1, 2, 3}, {1, 2}), std::invalid_argument);
}

TEST(DenseOracle, EmptyAndGuard) {
  EXPECT_TRUE(dense_pagerank_oracle(Digraph::from_edges(0, {})).empty());
  const Digraph big = paper_graph(3000, 1);
  EXPECT_THROW(dense_pagerank_oracle(big, 0.85, 2000),
               std::invalid_argument);
}

TEST(DenseOracle, MatchesHandComputedChain) {
  const Digraph g = Digraph::from_edges(2, {{0, 1}});
  const auto r = dense_pagerank_oracle(g);
  EXPECT_NEAR(r[0], 0.15, 1e-12);
  EXPECT_NEAR(r[1], 0.2775, 1e-12);
}

TEST(DenseOracle, MatchesHandComputedCycle) {
  const Digraph g = Digraph::from_edges(2, {{0, 1}, {1, 0}});
  const auto r = dense_pagerank_oracle(g);
  EXPECT_NEAR(r[0], 1.0, 1e-12);
  EXPECT_NEAR(r[1], 1.0, 1e-12);
}

class OracleVsEngines : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleVsEngines, AllEnginesAgreeWithTheDirectSolve) {
  const Digraph g = paper_graph(300, GetParam());
  const auto oracle = dense_pagerank_oracle(g);
  const auto placement = Placement::random(300, 6, GetParam());
  // epsilon 1e-8: tight enough that every engine lands within 1e-5 of
  // the direct solve, loose enough that the unbatched event/async
  // cascades stay polynomial (their event counts grow steeply as the
  // threshold tightens — see bench_ablation_event_time).
  PagerankOptions opts;
  opts.epsilon = 1e-8;

  const auto jacobi = centralized_pagerank(g, 0.85, 1e-13);
  ASSERT_TRUE(jacobi.converged);
  EXPECT_LT(summarize_quality(jacobi.ranks, oracle).max, 1e-9);

  const auto accel = centralized_pagerank_extrapolated(g, 0.85, 1e-13);
  ASSERT_TRUE(accel.converged);
  EXPECT_LT(summarize_quality(accel.ranks, oracle).max, 1e-9);

  DistributedPagerank pass_engine(g, placement, opts);
  ASSERT_TRUE(pass_engine.run().converged);
  EXPECT_LT(summarize_quality(pass_engine.ranks(), oracle).max, 1e-5);

  AsyncPagerankRuntime async_engine(g, placement, opts);
  const auto async_result = async_engine.run(/*message_cap=*/50'000'000);
  ASSERT_TRUE(async_result.converged);
  EXPECT_LT(summarize_quality(async_result.ranks, oracle).max, 1e-5);

  EventDrivenPagerank event_engine(g, placement, opts);
  const auto event_result = event_engine.run(/*event_cap=*/20'000'000);
  ASSERT_TRUE(event_result.converged);
  EXPECT_LT(summarize_quality(event_result.ranks, oracle).max, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleVsEngines,
                         ::testing::Values(101u, 202u, 303u));

}  // namespace
}  // namespace dprank
