#include "search/fasd.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace dprank {
namespace {

CorpusParams tiny_params() {
  CorpusParams p;
  p.num_docs = 800;
  p.vocabulary = 120;
  p.mean_terms = 20;
  p.min_terms = 4;
  p.max_terms = 60;
  p.seed = 31;
  return p;
}

class FasdTest : public ::testing::Test {
 protected:
  FasdTest() : corpus_(Corpus::synthesize(tiny_params())), index_(corpus_) {
    Rng rng(8);
    ranks_.resize(corpus_.num_docs());
    for (auto& r : ranks_) r = rng.uniform(0.15, 20.0);
  }
  Corpus corpus_;
  FasdIndex index_;
  std::vector<double> ranks_;
};

TEST_F(FasdTest, KeysAreNormalized) {
  for (NodeId d = 0; d < corpus_.num_docs(); ++d) {
    const auto& key = index_.key_of(d);
    double norm2 = 0.0;
    for (const double w : key.weights) norm2 += w * w;
    if (!key.empty()) {
      EXPECT_NEAR(norm2, 1.0, 1e-9) << "doc " << d;
    }
  }
}

TEST_F(FasdTest, SelfClosenessIsOne) {
  for (NodeId d = 0; d < 50; ++d) {
    const auto& key = index_.key_of(d);
    if (key.empty()) continue;
    EXPECT_NEAR(closeness(key, key), 1.0, 1e-9);
  }
}

TEST_F(FasdTest, DisjointKeysScoreZero) {
  MetadataKey a;
  a.terms = {1, 3, 5};
  a.weights = {0.5, 0.5, 0.5};
  MetadataKey b;
  b.terms = {0, 2, 4};
  b.weights = {0.5, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(closeness(a, b), 0.0);
  EXPECT_DOUBLE_EQ(closeness(a, MetadataKey{}), 0.0);
}

TEST_F(FasdTest, QueryKeyUsesIdfWeights) {
  // Rare terms carry more weight than common ones.
  const auto q = index_.make_query({0, corpus_.vocabulary() - 1});
  ASSERT_EQ(q.terms.size(), 2u);
  // Term 0 is the Zipf head (very common, low idf); the tail term is
  // rare (high idf).
  EXPECT_LT(q.weights[0], q.weights[1]);
  EXPECT_THROW(index_.make_query({corpus_.vocabulary()}),
               std::out_of_range);
}

TEST_F(FasdTest, ExhaustiveTopKIsSortedAndCorrectSize) {
  FasdSearch search(index_, ranks_, 0.7);
  const auto q = index_.make_query({5, 10, 20});
  const auto top = search.exhaustive_top_k(q, 25);
  ASSERT_EQ(top.size(), 25u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
  // Combined score honors the formula.
  for (const auto& s : top) {
    EXPECT_NEAR(s.score, 0.7 * s.close + 0.3 * s.rank, 1e-12);
  }
}

TEST_F(FasdTest, AlphaOneIsPureCloseness) {
  FasdSearch by_text(index_, ranks_, 1.0);
  const auto q = index_.make_query({7, 9});
  const auto top = by_text.exhaustive_top_k(q, 5);
  for (const auto& s : top) EXPECT_DOUBLE_EQ(s.score, s.close);
}

TEST_F(FasdTest, AlphaZeroIsPurePagerank) {
  FasdSearch by_rank(index_, ranks_, 0.0);
  const auto q = index_.make_query({7, 9});
  const auto top = by_rank.exhaustive_top_k(q, 3);
  // The single best document must be the max-rank document.
  const auto max_rank_doc = static_cast<NodeId>(std::distance(
      ranks_.begin(), std::max_element(ranks_.begin(), ranks_.end())));
  EXPECT_EQ(top[0].doc, max_rank_doc);
}

TEST_F(FasdTest, AlphaValidation) {
  EXPECT_THROW(FasdSearch(index_, ranks_, -0.1), std::invalid_argument);
  EXPECT_THROW(FasdSearch(index_, ranks_, 1.1), std::invalid_argument);
  std::vector<double> wrong(10, 1.0);
  EXPECT_THROW(FasdSearch(index_, wrong, 0.5), std::invalid_argument);
}

TEST_F(FasdTest, ForwardingSearchVisitsAtMostTtlPeers) {
  FasdSearch search(index_, ranks_, 0.7);
  const auto placement = Placement::random(corpus_.num_docs(), 20, 3);
  const auto q = index_.make_query({2, 4, 8});
  const auto result = search.forwarding_search(q, placement, 0, 6, 10);
  EXPECT_LE(result.path.size(), 6u);
  EXPECT_EQ(result.path.front(), 0u);
  // No peer visited twice.
  std::set<PeerId> distinct(result.path.begin(), result.path.end());
  EXPECT_EQ(distinct.size(), result.path.size());
}

TEST_F(FasdTest, LongerWalksImproveRecall) {
  FasdSearch search(index_, ranks_, 0.7);
  const auto placement = Placement::random(corpus_.num_docs(), 20, 3);
  const auto q = index_.make_query({1, 6});
  const auto short_walk = search.forwarding_search(q, placement, 5, 2, 10);
  const auto long_walk = search.forwarding_search(q, placement, 5, 15, 10);
  EXPECT_GE(long_walk.recall_score, short_walk.recall_score);
  EXPECT_GT(long_walk.recall_score, 0.3);
  EXPECT_LE(long_walk.recall_score, 1.0 + 1e-12);
}

TEST_F(FasdTest, FullCoverageWalkMatchesExhaustive) {
  // TTL >= num_peers visits everyone: results must equal the
  // exhaustive top-k exactly.
  FasdSearch search(index_, ranks_, 0.7);
  const auto placement = Placement::random(corpus_.num_docs(), 10, 3);
  const auto q = index_.make_query({3, 5});
  const auto walk = search.forwarding_search(q, placement, 0, 10, 8);
  const auto exact = search.exhaustive_top_k(q, 8);
  ASSERT_EQ(walk.results.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(walk.results[i].doc, exact[i].doc);
  }
  EXPECT_NEAR(walk.recall_score, 1.0, 1e-9);
}

}  // namespace
}  // namespace dprank
