#include "dht/ring.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace dprank {
namespace {

/// Brute-force owner: the live peer with the smallest clockwise distance
/// at-or-after the key.
PeerId brute_force_owner(const ChordRing& ring, Guid key) {
  PeerId best = kInvalidPeer;
  U128 best_dist = U128::max();
  for (const PeerId p : ring.peers_in_ring_order()) {
    const U128 dist = ring_distance(key, ring.id_of(p));
    if (best == kInvalidPeer || dist < best_dist) {
      best = p;
      best_dist = dist;
    }
  }
  return best;
}

TEST(ChordRing, EmptyRingThrows) {
  const ChordRing ring;
  EXPECT_EQ(ring.size(), 0u);
  EXPECT_THROW(ring.successor_of_key(Guid{1, 2}), std::logic_error);
}

TEST(ChordRing, SinglePeerOwnsEverything) {
  ChordRing ring(1);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(ring.successor_of_key(Guid{rng(), rng()}), 0u);
  }
  // Local keys route in zero hops.
  const auto r = ring.route(0, Guid{123, 456});
  EXPECT_EQ(r.destination, 0u);
  EXPECT_EQ(r.hop_count(), 0u);
}

TEST(ChordRing, JoinRejectsDuplicates) {
  ChordRing ring(4);
  EXPECT_THROW(ring.join(2, Guid{9, 9}), std::invalid_argument);
  EXPECT_THROW(ring.join(99, ring.id_of(1)), std::invalid_argument);
}

TEST(ChordRing, LeaveIsIdempotent) {
  ChordRing ring(4);
  ring.leave(2);
  EXPECT_FALSE(ring.contains(2));
  ring.leave(2);  // no-op
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_THROW(ring.id_of(2), std::out_of_range);
}

TEST(ChordRing, SuccessorMatchesBruteForce) {
  ChordRing ring(64);
  Rng rng(17);
  for (int i = 0; i < 500; ++i) {
    const Guid key{rng(), rng()};
    EXPECT_EQ(ring.successor_of_key(key), brute_force_owner(ring, key));
  }
}

TEST(ChordRing, SuccessorOfPeerIdIsThatPeer) {
  ChordRing ring(32);
  for (const PeerId p : ring.peers_in_ring_order()) {
    EXPECT_EQ(ring.successor_of_key(ring.id_of(p)), p);
  }
}

TEST(ChordRing, SuccessorPeerSkipsSelf) {
  ChordRing ring(16);
  const auto order = ring.peers_in_ring_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const PeerId next = order[(i + 1) % order.size()];
    EXPECT_EQ(ring.successor_peer(ring.id_of(order[i])), next);
  }
}

TEST(ChordRing, FingerZeroIsSuccessorIsh) {
  // finger(p, 0) = successor of id+1, i.e. the next peer (or p itself if
  // the gap to its successor is > 1, which never happens on dense rings
  // of random 128-bit ids... so just check it's a live peer).
  ChordRing ring(32);
  for (const PeerId p : ring.peers_in_ring_order()) {
    EXPECT_TRUE(ring.contains(ring.finger(p, 0)));
  }
  EXPECT_THROW(ring.finger(0, -1), std::out_of_range);
  EXPECT_THROW(ring.finger(0, 128), std::out_of_range);
}

TEST(ChordRing, FingerHalfwayAcross) {
  // finger(p, 127) is the owner of the antipode; it must match
  // successor_of_key directly.
  ChordRing ring(64);
  for (const PeerId p : ring.peers_in_ring_order()) {
    const Guid antipode = ring.id_of(p) + U128::pow2(127);
    EXPECT_EQ(ring.finger(p, 127), ring.successor_of_key(antipode));
  }
}

TEST(ChordRing, RouteReachesCorrectOwner) {
  ChordRing ring(100);
  Rng rng(23);
  for (int i = 0; i < 300; ++i) {
    const auto from = static_cast<PeerId>(rng.bounded(100));
    const Guid key{rng(), rng()};
    const auto route = ring.route(from, key);
    EXPECT_EQ(route.destination, ring.successor_of_key(key));
    if (route.destination == from) {
      EXPECT_EQ(route.hop_count(), 0u);
    } else {
      ASSERT_FALSE(route.hops.empty());
      EXPECT_EQ(route.hops.back(), route.destination);
    }
  }
}

TEST(ChordRing, RouteHopsAreLogarithmic) {
  ChordRing ring(256);
  Rng rng(29);
  double total_hops = 0;
  std::size_t max_hops = 0;
  constexpr int kLookups = 500;
  for (int i = 0; i < kLookups; ++i) {
    const auto from = static_cast<PeerId>(rng.bounded(256));
    const auto route = ring.route(from, Guid{rng(), rng()});
    total_hops += static_cast<double>(route.hop_count());
    max_hops = std::max(max_hops, route.hop_count());
  }
  // Chord: ~0.5 log2(N) average, log2(N) w.h.p. worst case.
  EXPECT_LT(total_hops / kLookups, std::log2(256.0) + 1);
  EXPECT_LE(max_hops, 2 * 8 + 2);
}

TEST(ChordRing, RouteMonotoneProgress) {
  // Every intermediate hop strictly reduces the clockwise distance to
  // the key. (The final hop lands on the key's successor, i.e. just
  // *past* the key, so it is excluded from the monotonicity check.)
  ChordRing ring(128);
  Rng rng(31);
  for (int i = 0; i < 100; ++i) {
    const auto from = static_cast<PeerId>(rng.bounded(128));
    const Guid key{rng(), rng()};
    const auto route = ring.route(from, key);
    U128 prev_dist = ring_distance(ring.id_of(from), key);
    for (std::size_t h = 0; h + 1 < route.hops.size(); ++h) {
      const U128 dist = ring_distance(ring.id_of(route.hops[h]), key);
      EXPECT_LT(dist, prev_dist);
      prev_dist = dist;
    }
    if (!route.hops.empty()) {
      // The final peer owns the key: the key lies in (predecessor, id].
      EXPECT_EQ(route.hops.back(), ring.successor_of_key(key));
    }
  }
}

TEST(ChordRing, KeysFailOverOnLeave) {
  ChordRing ring(16);
  Rng rng(41);
  const Guid key{rng(), rng()};
  const PeerId owner = ring.successor_of_key(key);
  const PeerId heir = ring.successor_peer(ring.id_of(owner));
  ring.leave(owner);
  EXPECT_EQ(ring.successor_of_key(key), heir);
}

TEST(ChordRing, RejoinRestoresOwnership) {
  ChordRing ring(16);
  const Guid key = ring.id_of(5) - U128{0, 1};
  ASSERT_EQ(ring.successor_of_key(key), 5u);
  const Guid id5 = ring.id_of(5);
  ring.leave(5);
  EXPECT_NE(ring.successor_of_key(key), 5u);
  ring.join(5, id5);
  EXPECT_EQ(ring.successor_of_key(key), 5u);
}

// ---- SelfHealingRing: local tables, stabilization, repair ----

/// Oracle owner over live membership (same arc convention as ChordRing).
PeerId healing_brute_owner(const SelfHealingRing& ring, Guid key) {
  PeerId best = kInvalidPeer;
  U128 best_dist = U128::max();
  for (const PeerId p : ring.peers_in_ring_order()) {
    const U128 dist = ring_distance(key, ring.id_of(p));
    if (best == kInvalidPeer || dist < best_dist) {
      best = p;
      best_dist = dist;
    }
  }
  return best;
}

/// Sampled lookups from random live origins must land on the oracle
/// owner (the routability contract validate() also asserts).
void expect_routable(const SelfHealingRing& ring, std::uint64_t seed,
                     int samples = 100) {
  const auto live = ring.peers_in_ring_order();
  Rng rng(seed);
  for (int i = 0; i < samples; ++i) {
    const PeerId from = live[rng.bounded(live.size())];
    const Guid key{rng(), rng()};
    const auto route = ring.route(from, key);
    ASSERT_TRUE(route.ok);
    EXPECT_EQ(route.destination, healing_brute_owner(ring, key));
  }
}

TEST(SelfHealingRing, StartsConvergedAndRoutable) {
  const SelfHealingRing ring(32);
  EXPECT_TRUE(ring.converged());
  ring.validate(64);
  expect_routable(ring, 51);
  // Successor lists match the converged oracle.
  const auto order = ring.peers_in_ring_order();
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto succ = ring.successors_of(order[i]);
    ASSERT_EQ(succ.size(), SelfHealingRing::kSuccessors);
    for (std::size_t k = 0; k < succ.size(); ++k) {
      EXPECT_EQ(succ[k], order[(i + 1 + k) % order.size()]);
    }
  }
}

TEST(SelfHealingRing, SurvivesKSuccessiveCrashes) {
  // The r = 3 successor list tolerates up to 3 consecutive simultaneous
  // failures: kill 3 ring-adjacent peers at once, stabilize, and every
  // key must resolve to the live oracle owner again.
  SelfHealingRing ring(32);
  const auto order = ring.peers_in_ring_order();
  for (std::size_t k = 0; k < SelfHealingRing::kSuccessors; ++k) {
    ring.crash(order[(5 + k) % order.size()]);
  }
  EXPECT_FALSE(ring.converged());
  const std::size_t rounds = ring.stabilize(8);
  EXPECT_GT(rounds, 0u);
  EXPECT_TRUE(ring.converged());
  ring.validate(64);
  expect_routable(ring, 53);
  EXPECT_GT(ring.repairs(), 0u);
}

TEST(SelfHealingRing, RoutesDuringDisruptionSkippingDeadPointers) {
  SelfHealingRing ring(32);
  const auto order = ring.peers_in_ring_order();
  ring.crash(order[10]);
  // Before any stabilization, pointers at other peers still name the
  // victim; lookups skip them (counted as dead probes) and keep making
  // clockwise progress instead of failing.
  std::size_t dead_probes = 0;
  Rng rng(57);
  const auto live = ring.peers_in_ring_order();
  for (int i = 0; i < 200; ++i) {
    const PeerId from = live[rng.bounded(live.size())];
    const auto probe = ring.route(from, Guid{rng(), rng()});
    ASSERT_TRUE(probe.ok);
    dead_probes += probe.dead_probes;
  }
  EXPECT_GT(dead_probes, 0u);  // stale pointers were seen and skipped
}

TEST(SelfHealingRing, JoinConvergesThroughStabilization) {
  SelfHealingRing ring(16);
  ring.join(100, peer_guid(100));
  EXPECT_TRUE(ring.contains(100));
  // The joiner bootstrapped its own tables; neighbors converge in a
  // round or two of stabilization.
  (void)ring.stabilize(8);
  EXPECT_TRUE(ring.converged());
  ring.validate(64);
  expect_routable(ring, 59);
  // The joiner now owns the arc ending at its id.
  EXPECT_EQ(ring.successor_of_key(peer_guid(100)), 100u);
}

TEST(SelfHealingRing, GracefulLeaveNeverBreaksRouting) {
  SelfHealingRing ring(16);
  const auto order = ring.peers_in_ring_order();
  ring.leave(order[4]);
  // The leaver repaired its immediate neighbors on the way out: routing
  // works before stabilization even runs.
  expect_routable(ring, 61, 50);
  (void)ring.stabilize(8);
  EXPECT_TRUE(ring.converged());
  ring.validate(64);
}

TEST(SelfHealingRing, HealsEvenBeyondSuccessorListDepth) {
  // Killing MORE than r consecutive peers exceeds the successor-list
  // guarantee; finger fallback (and, in the limit, the oracle
  // re-bootstrap) still heals the ring.
  SelfHealingRing ring(24);
  const auto order = ring.peers_in_ring_order();
  for (std::size_t k = 0; k < SelfHealingRing::kSuccessors + 2; ++k) {
    ring.crash(order[(3 + k) % order.size()]);
  }
  (void)ring.stabilize(16);
  EXPECT_TRUE(ring.converged());
  ring.validate(64);
  expect_routable(ring, 67);
}

TEST(SelfHealingRing, CrashDownToTwoPeersStillHeals) {
  // Degenerate shrink: crash all but two peers, one event per
  // stabilization window (the supported regime).
  SelfHealingRing ring(8);
  const auto order = ring.peers_in_ring_order();
  for (std::size_t i = 0; i + 2 < order.size(); ++i) {
    ring.crash(order[i]);
    (void)ring.stabilize(8);
    EXPECT_TRUE(ring.converged()) << "after crash " << i;
  }
  EXPECT_EQ(ring.size(), 2u);
  ring.validate(16);
  expect_routable(ring, 71, 50);
}

TEST(ChordRing, RoutingAfterChurn) {
  ChordRing ring(64);
  Rng rng(47);
  // Drop a third of the peers, then verify routing still lands on the
  // brute-force owner from arbitrary origins.
  for (PeerId p = 0; p < 64; p += 3) ring.leave(p);
  const auto live = ring.peers_in_ring_order();
  for (int i = 0; i < 200; ++i) {
    const PeerId from = live[rng.bounded(live.size())];
    const Guid key{rng(), rng()};
    const auto route = ring.route(from, key);
    EXPECT_EQ(route.destination, brute_force_owner(ring, key));
  }
}

}  // namespace
}  // namespace dprank
