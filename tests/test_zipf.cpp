#include "common/zipf.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace dprank {
namespace {

TEST(PowerLaw, RejectsBadSupport) {
  EXPECT_THROW(PowerLawSampler(2.0, 0, 10), std::invalid_argument);
  EXPECT_THROW(PowerLawSampler(2.0, 5, 4), std::invalid_argument);
}

TEST(PowerLaw, SamplesWithinSupport) {
  Rng rng(1);
  const PowerLawSampler s(2.1, 1, 100);
  for (int i = 0; i < 10'000; ++i) {
    const auto k = s.sample(rng);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 100u);
  }
}

TEST(PowerLaw, DegenerateSupportAlwaysReturnsK) {
  Rng rng(2);
  const PowerLawSampler s(2.4, 7, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s.sample(rng), 7u);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(PowerLaw, CdfMonotoneAndNormalized) {
  const PowerLawSampler s(2.1, 1, 1000);
  double prev = 0.0;
  for (std::uint64_t k = 1; k <= 1000; k += 13) {
    const double c = s.cdf(k);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_DOUBLE_EQ(s.cdf(1000), 1.0);
  EXPECT_DOUBLE_EQ(s.cdf(5000), 1.0);  // clamps above support
  EXPECT_DOUBLE_EQ(s.cdf(0), 0.0);     // clamps below support
}

TEST(PowerLaw, FrequenciesFollowExponent) {
  // Empirical P(1)/P(2) should be 2^alpha.
  Rng rng(3);
  const double alpha = 2.4;
  const PowerLawSampler s(alpha, 1, 1000);
  std::vector<int> counts(11, 0);
  constexpr int kDraws = 400'000;
  for (int i = 0; i < kDraws; ++i) {
    const auto k = s.sample(rng);
    if (k <= 10) ++counts[k];
  }
  const double ratio12 =
      static_cast<double>(counts[1]) / static_cast<double>(counts[2]);
  EXPECT_NEAR(ratio12, std::pow(2.0, alpha), 0.3);
  const double ratio13 =
      static_cast<double>(counts[1]) / static_cast<double>(counts[3]);
  EXPECT_NEAR(ratio13, std::pow(3.0, alpha), 1.0);
}

TEST(PowerLaw, MeanMatchesEmpirical) {
  Rng rng(4);
  const PowerLawSampler s(2.1, 1, 500);
  double sum = 0;
  constexpr int kDraws = 200'000;
  for (int i = 0; i < kDraws; ++i) {
    sum += static_cast<double>(s.sample(rng));
  }
  EXPECT_NEAR(sum / kDraws, s.mean(), 0.05 * s.mean());
}

TEST(PowerLaw, BroderExponentsHaveSaneMeans) {
  // In-degree 2.1 has a heavier tail (larger mean) than out-degree 2.4.
  const PowerLawSampler in_deg(2.1, 1, 1000);
  const PowerLawSampler out_deg(2.4, 1, 1000);
  EXPECT_GT(in_deg.mean(), out_deg.mean());
  EXPECT_GT(in_deg.mean(), 1.0);
  EXPECT_LT(in_deg.mean(), 10.0);  // web-like graphs are sparse
}

TEST(Zipf, RanksAreZeroBased) {
  Rng rng(5);
  const ZipfSampler z(100, 1.0);
  bool saw_zero = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto r = z.sample(rng);
    ASSERT_LT(r, 100u);
    if (r == 0) saw_zero = true;
  }
  EXPECT_TRUE(saw_zero);  // rank 0 is the most probable outcome
}

TEST(Zipf, ExpectedFrequencySumsToOne) {
  const ZipfSampler z(50, 1.0);
  double total = 0;
  for (std::uint64_t r = 0; r < 50; ++r) total += z.expected_frequency(r);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Zipf, TopRankDominates) {
  const ZipfSampler z(1880, 1.0);
  EXPECT_GT(z.expected_frequency(0), z.expected_frequency(1));
  EXPECT_GT(z.expected_frequency(1), z.expected_frequency(10));
  EXPECT_GT(z.expected_frequency(10), z.expected_frequency(1000));
}

}  // namespace
}  // namespace dprank
