#include "pagerank/event_engine.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"
#include "sim/time_model.hpp"

namespace dprank {
namespace {

PagerankOptions opts(double eps) {
  PagerankOptions o;
  o.epsilon = eps;
  return o;
}

TEST(EventEngine, ValidatesPlacement) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(5, 2, 1);
  EXPECT_THROW(EventDrivenPagerank(g, p, opts(1e-3), {}),
               std::invalid_argument);
}

TEST(EventEngine, ConvergesToCentralizedFixedPoint) {
  // epsilon 1e-6 with a generous batching interval: the event-level
  // simulation's message count grows superlinearly as epsilon tightens
  // (fragmented arrival batches each trigger their own recompute), so
  // the very tight thresholds belong to the pass-based engine; this one
  // models the paper's operating regime (~1e-3..1e-6).
  const Digraph g = paper_graph(2000, 4);
  const auto p = Placement::random(2000, 20, 4);
  EventNetParams net;
  net.min_batch_interval_sec = 0.5;
  EventDrivenPagerank engine(g, p, opts(1e-6), net);
  const auto result = engine.run(/*event_cap=*/10'000'000);
  ASSERT_TRUE(result.converged);
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  EXPECT_LT(summarize_quality(result.ranks, ref).max, 1e-3);
}

TEST(EventEngine, AgreesWithPassBasedEngine) {
  const Digraph g = paper_graph(1500, 5);
  const auto p = Placement::random(1500, 10, 5);
  EventDrivenPagerank event_engine(g, p, opts(1e-6));
  const auto event_result = event_engine.run();
  ASSERT_TRUE(event_result.converged);

  DistributedPagerank pass_engine(g, p, opts(1e-6));
  ASSERT_TRUE(pass_engine.run().converged);
  EXPECT_LT(
      summarize_quality(event_result.ranks, pass_engine.ranks()).max,
      1e-3);
}

TEST(EventEngine, CompletionTimeRespectsPhysics) {
  const Digraph g = paper_graph(3000, 6);
  const auto p = Placement::random(3000, 50, 6);
  EventNetParams net;
  net.bandwidth_bytes_per_sec = 32.0 * 1024;
  net.latency_sec = 0.1;
  EventDrivenPagerank engine(g, p, opts(1e-4), net);
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  // Lower bound: all bytes through the busiest uplink would still need
  // at least total_bytes / (peers * bandwidth) seconds end to end.
  const double total_bytes = static_cast<double>(result.messages) * 24.0;
  const double aggregate_bw = 50 * net.bandwidth_bytes_per_sec;
  EXPECT_GT(result.completion_seconds, total_bytes / aggregate_bw);
  // And at least one latency (there was at least one transfer).
  EXPECT_GT(result.completion_seconds, net.latency_sec);
}

TEST(EventEngine, FasterNetworkFinishesSooner) {
  const Digraph g = paper_graph(2000, 7);
  const auto p = Placement::random(2000, 20, 7);
  EventNetParams slow;
  slow.bandwidth_bytes_per_sec = 32.0 * 1024;
  EventNetParams fast;
  fast.bandwidth_bytes_per_sec = 5.6e6;
  EventDrivenPagerank slow_engine(g, p, opts(1e-4), slow);
  EventDrivenPagerank fast_engine(g, p, opts(1e-4), fast);
  const auto slow_result = slow_engine.run();
  const auto fast_result = fast_engine.run();
  ASSERT_TRUE(slow_result.converged);
  ASSERT_TRUE(fast_result.converged);
  EXPECT_LT(fast_result.completion_seconds, slow_result.completion_seconds);
}

TEST(EventEngine, CoalescingBoundsTransfers) {
  // Transfers (coalesced sends) never exceed messages; the t=0 burst in
  // particular must coalesce heavily (each peer ships at most one batch
  // per destination for its whole startup recompute).
  const Digraph g = paper_graph(5000, 8);
  const auto p = Placement::random(5000, 10, 8);
  EventDrivenPagerank engine(g, p, opts(1e-4));
  const auto result = engine.run();
  ASSERT_TRUE(result.converged);
  EXPECT_LT(result.transfers, result.messages);
  // Steady-state cascades are fine-grained, so overall coalescing is
  // modest — but it must be real (avg batch > 1 message).
  EXPECT_GT(static_cast<double>(result.messages),
            1.1 * static_cast<double>(result.transfers));
}

TEST(EventEngine, EventCapAborts) {
  const Digraph g = paper_graph(2000, 9);
  const auto p = Placement::random(2000, 20, 9);
  EventDrivenPagerank engine(g, p, opts(1e-10));
  const auto result = engine.run(/*event_cap=*/10);
  EXPECT_FALSE(result.converged);
}

TEST(EventEngine, EmptyGraphCompletesInstantly) {
  const Digraph g = Digraph::from_edges(10, {});
  const auto p = Placement::random(10, 4, 1);
  EventDrivenPagerank engine(g, p, opts(1e-3));
  const auto result = engine.run();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.messages, 0u);
  for (const double r : result.ranks) EXPECT_NEAR(r, 0.15, 1e-12);
}

TEST(EventEngine, LatencySensitivityInvisibleToAnalyticModel) {
  // The Eq. 4 analytic model has no latency term at all; the event
  // engine exists to expose exactly this effect. Raising one-way
  // latency must lengthen completion (update chains serialize on it)
  // while leaving the message bill essentially unchanged.
  const Digraph g = paper_graph(3000, 10);
  const auto p = Placement::random(3000, 50, 10);
  EventNetParams low;
  low.latency_sec = 0.0;
  EventNetParams high;
  high.latency_sec = 0.5;
  EventDrivenPagerank fast(g, p, opts(1e-4), low);
  EventDrivenPagerank slow(g, p, opts(1e-4), high);
  const auto fast_result = fast.run();
  const auto slow_result = slow.run();
  ASSERT_TRUE(fast_result.converged);
  ASSERT_TRUE(slow_result.converged);
  EXPECT_GT(slow_result.completion_seconds,
            fast_result.completion_seconds + 1.0);

  // Meanwhile the analytic serialized model, fed the pass history, is
  // identical for both configurations — it cannot see latency.
  DistributedPagerank pass_engine(g, p, opts(1e-4));
  ASSERT_TRUE(pass_engine.run().converged);
  NetworkParams analytic;
  analytic.bandwidth_bytes_per_sec = low.bandwidth_bytes_per_sec;
  const auto estimate =
      estimate_serialized(pass_engine.pass_history(), analytic);
  EXPECT_GT(estimate.total_seconds(), 0.0);
}

}  // namespace
}  // namespace dprank
