#include "fault/campaign.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/generator.hpp"

namespace dprank {
namespace {

/// Small-but-real soak: enough peers and events to exercise every
/// handoff kind, small enough to run in a unit-test budget.
ChaosCampaignConfig small_config(std::uint64_t seed) {
  ChaosCampaignConfig cfg;
  cfg.initial_peers = 16;
  cfg.events = 12;
  cfg.seed = seed;
  cfg.min_live = 6;
  cfg.event_gap_max = 1;
  cfg.options.epsilon = 1e-3;
  cfg.options.threads = 1;
  cfg.options.validate_every_n_passes = 4;
  return cfg;
}

TEST(ChaosSchedule, DeterministicAndWellFormed) {
  const ChaosCampaignConfig cfg = small_config(42);
  const auto a = make_chaos_schedule(cfg);
  const auto b = make_chaos_schedule(cfg);
  ASSERT_EQ(a.size(), cfg.events);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].pass, b[i].pass);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].peer, b[i].peer);
  }
  // Passes non-decreasing, every event at or after the first-event pass.
  for (std::size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i].pass, a[i - 1].pass);
  }
  EXPECT_GE(a.front().pass, cfg.first_event_pass);
  // Replaying the schedule never drops the live population below the
  // floor (departures at the floor are rerolled into joins).
  std::uint64_t live = cfg.initial_peers;
  for (const auto& ev : a) {
    if (ev.kind == MembershipEvent::Kind::kJoin) {
      ++live;
    } else {
      EXPECT_GT(live, cfg.min_live);
      --live;
    }
  }
}

TEST(ChaosSchedule, DifferentSeedsDifferentHistories) {
  const auto a = make_chaos_schedule(small_config(1));
  const auto b = make_chaos_schedule(small_config(2));
  bool any_diff = a.size() != b.size();
  for (std::size_t i = 0; !any_diff && i < a.size(); ++i) {
    any_diff = a[i].pass != b[i].pass || a[i].kind != b[i].kind ||
               a[i].peer != b[i].peer;
  }
  EXPECT_TRUE(any_diff);
}

TEST(ChaosSchedule, RejectsDegenerateConfigs) {
  ChaosCampaignConfig cfg = small_config(42);
  cfg.join_weight = cfg.leave_weight = cfg.crash_weight = 0;
  EXPECT_THROW((void)make_chaos_schedule(cfg), std::invalid_argument);
  ChaosCampaignConfig cfg2 = small_config(42);
  cfg2.initial_peers = 0;
  EXPECT_THROW((void)make_chaos_schedule(cfg2), std::invalid_argument);
}

TEST(ChaosCampaign, ConvergesWithMassConservedUnderReplicas) {
  const Digraph g = paper_graph(400, 9);
  const ChaosCampaignConfig cfg = small_config(42);
  const ChaosCampaignReport rep = run_chaos_campaign(g, cfg);

  EXPECT_TRUE(rep.result.converged);
  EXPECT_EQ(rep.joins + rep.leaves + rep.crashes, cfg.events);
  // Acceptance bar: with >= 1 replica per document the audited rank mass
  // is fully accounted at exit.
  EXPECT_NEAR(rep.result.mass_ratio, 1.0, 1e-9);
  // Every crash was eventually declared (the run cannot converge while
  // one is pending), each with a recorded detection latency.
  EXPECT_EQ(rep.declared_dead, rep.crashes);
  EXPECT_EQ(rep.detection_latencies.size(), rep.crashes);
  for (const auto lat : rep.detection_latencies) {
    EXPECT_GE(lat, 1u);
    EXPECT_LE(lat, 8u);
  }
  if (rep.crashes > 0) {
    // Crashed ranges moved and the detection window was observable.
    EXPECT_GT(rep.handoff_docs, 0u);
    EXPECT_GT(rep.outbox_dropped_dead + rep.stale_owner_queries +
                  rep.known_loss_events,
              0u);
  }
  EXPECT_EQ(rep.final_live_peers,
            cfg.initial_peers + rep.joins - rep.leaves - rep.crashes);
  EXPECT_EQ(rep.emergency_rebootstraps, 0u);  // churn is paced, never r-deep
}

TEST(ChaosCampaign, BitReproducibleForFixedSeed) {
  const Digraph g = paper_graph(300, 9);
  const ChaosCampaignConfig cfg = small_config(7);
  const ChaosCampaignReport a = run_chaos_campaign(g, cfg);
  const ChaosCampaignReport b = run_chaos_campaign(g, cfg);
  EXPECT_EQ(a.rank_digest, b.rank_digest);
  EXPECT_EQ(a.result.passes, b.result.passes);
  EXPECT_EQ(a.handoff_docs, b.handoff_docs);
  EXPECT_EQ(a.stale_owner_queries, b.stale_owner_queries);
  EXPECT_EQ(a.gave_up, b.gave_up);
  EXPECT_EQ(a.detection_latencies, b.detection_latencies);

  const ChaosCampaignReport c = run_chaos_campaign(g, small_config(8));
  EXPECT_NE(c.rank_digest, a.rank_digest);
}

TEST(ChaosCampaign, ReplicaLessRunsRepairThroughTheAudit) {
  // Without replicas a crashed range restarts from initial_rank; the
  // quiescence audit finds the leaked emissions and re-injects them, so
  // the run still ends fully accounted.
  const Digraph g = paper_graph(300, 9);
  ChaosCampaignConfig cfg = small_config(42);
  cfg.replicas = 0;
  const ChaosCampaignReport rep = run_chaos_campaign(g, cfg);
  EXPECT_TRUE(rep.result.converged);
  EXPECT_NEAR(rep.result.mass_ratio, 1.0, 1e-9);
  EXPECT_EQ(rep.replica_restores, 0u);
}

TEST(ChaosCampaign, ReplicaLessWithoutAuditDegradesBoundedNotHung) {
  // The negative mode: no replicas AND no audit repair. The run must
  // still terminate (declared-dead eviction stops infinite
  // retransmission), and the loss is *accounted* — the known-loss
  // ledger records exactly what crash wipes and evictions destroyed.
  const Digraph g = paper_graph(300, 9);
  ChaosCampaignConfig cfg = small_config(42);
  cfg.replicas = 0;
  cfg.mass_audit = false;
  const ChaosCampaignReport rep = run_chaos_campaign(g, cfg);
  EXPECT_TRUE(rep.result.converged);
  if (rep.crashes > 0) {
    EXPECT_GT(rep.known_loss_events, 0u);
    EXPECT_GT(rep.audited_known_loss, 0.0);
  }
  // Bounded: the loss ledger cannot exceed the total mass ever emitted;
  // a loose sanity ceiling (docs * initial rank * a generous factor).
  EXPECT_LT(rep.audited_known_loss,
            static_cast<double>(g.num_nodes()) * 100.0);
}

}  // namespace
}  // namespace dprank
