#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace dprank {
namespace {

TEST(Summary, PercentileNearestRank) {
  const Summary s({1, 2, 3, 4, 5, 6, 7, 8, 9, 10});
  EXPECT_DOUBLE_EQ(s.percentile(50), 5);
  EXPECT_DOUBLE_EQ(s.percentile(90), 9);
  EXPECT_DOUBLE_EQ(s.percentile(100), 10);
  EXPECT_DOUBLE_EQ(s.percentile(10), 1);
  EXPECT_DOUBLE_EQ(s.percentile(0.1), 1);  // clamps to first rank
}

TEST(Summary, UnsortedInputIsSorted) {
  const Summary s({5, 1, 4, 2, 3});
  EXPECT_DOUBLE_EQ(s.min(), 1);
  EXPECT_DOUBLE_EQ(s.max(), 5);
  EXPECT_DOUBLE_EQ(s.percentile(60), 3);
}

TEST(Summary, MeanAndTotal) {
  const Summary s({2, 4, 6});
  EXPECT_DOUBLE_EQ(s.mean(), 4);
  EXPECT_DOUBLE_EQ(s.total(), 12);
  EXPECT_EQ(s.count(), 3u);
}

TEST(Summary, StddevMatchesKnown) {
  const Summary s({2, 4, 4, 4, 5, 5, 7, 9});
  // Sample stddev of this classic set is ~2.138.
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Summary, SingleElement) {
  const Summary s({42.0});
  EXPECT_DOUBLE_EQ(s.percentile(50), 42.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, EmptyThrows) {
  const Summary s{};
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.percentile(50), std::logic_error);
  EXPECT_THROW(s.min(), std::logic_error);
  EXPECT_THROW(s.max(), std::logic_error);
}

TEST(Summary, PercentileRangeValidation) {
  const Summary s({1.0, 2.0});
  EXPECT_THROW(s.percentile(0), std::invalid_argument);
  EXPECT_THROW(s.percentile(-5), std::invalid_argument);
  EXPECT_THROW(s.percentile(101), std::invalid_argument);
}

TEST(Welford, MatchesBatchStatistics) {
  Rng rng(6);
  std::vector<double> sample;
  Welford w;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.uniform(-10, 10);
    sample.push_back(x);
    w.add(x);
  }
  const Summary s(sample);
  EXPECT_EQ(w.count(), 5000u);
  EXPECT_NEAR(w.mean(), s.mean(), 1e-9);
  EXPECT_NEAR(w.stddev(), s.stddev(), 1e-9);
  EXPECT_DOUBLE_EQ(w.min(), s.min());
  EXPECT_DOUBLE_EQ(w.max(), s.max());
}

TEST(Welford, MergeEqualsSinglePass) {
  Rng rng(13);
  Welford whole;
  Welford a;
  Welford b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 1);
    whole.add(x);
    (i % 3 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(Welford, MergeWithEmpty) {
  Welford a;
  a.add(1);
  a.add(3);
  Welford empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  Welford target;
  target.merge(a);
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(Welford, VarianceOfConstant) {
  Welford w;
  for (int i = 0; i < 10; ++i) w.add(7.5);
  EXPECT_DOUBLE_EQ(w.variance(), 0.0);
  EXPECT_DOUBLE_EQ(w.stddev(), 0.0);
}

TEST(MaxCdfDeviation, PerfectMatchIsSmall) {
  // Sample CDF values at i/n exactly: deviation bounded by 1/n.
  const int n = 100;
  std::vector<double> sample(n);
  std::vector<double> cdf(n);
  for (int i = 0; i < n; ++i) {
    sample[i] = i;
    cdf[i] = (i + 1.0) / n;
  }
  EXPECT_LT(max_cdf_deviation(sample, cdf), 1.0 / n + 1e-12);
}

TEST(MaxCdfDeviation, DetectsMismatch) {
  std::vector<double> sample{1, 2, 3, 4};
  std::vector<double> cdf{0.1, 0.2, 0.3, 0.4};  // empirical is .25..1.0
  EXPECT_NEAR(max_cdf_deviation(sample, cdf), 0.6, 1e-12);
}

TEST(MaxCdfDeviation, DetectsEmpiricalBelowReference) {
  // The reference jumps to 1.0 before the first sample point: the
  // deviation lives on the *lower* side of the empirical step
  // (|0/2 - 1.0| = 1.0). The one-sided statistic evaluated only at
  // (i+1)/n reported 0.5 here — the regression this test pins.
  std::vector<double> sample{1, 2};
  std::vector<double> cdf{1.0, 1.0};
  EXPECT_NEAR(max_cdf_deviation(sample, cdf), 1.0, 1e-12);
}

}  // namespace
}  // namespace dprank
