#include "search/distributed_index.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"

namespace dprank {
namespace {

CorpusParams tiny_params() {
  CorpusParams p;
  p.num_docs = 500;
  p.vocabulary = 80;
  p.mean_terms = 15;
  p.min_terms = 3;
  p.max_terms = 40;
  p.seed = 5;
  return p;
}

class IndexTest : public ::testing::Test {
 protected:
  IndexTest()
      : corpus_(Corpus::synthesize(tiny_params())),
        ring_(8),
        index_(corpus_, ring_) {}

  Corpus corpus_;
  ChordRing ring_;
  DistributedIndex index_;
};

TEST_F(IndexTest, PostingsMatchCorpus) {
  EXPECT_EQ(index_.total_postings(),
            [&] {
              std::uint64_t total = 0;
              for (NodeId d = 0; d < corpus_.num_docs(); ++d) {
                total += corpus_.terms_of(d).size();
              }
              return total;
            }());
  for (TermId t = 0; t < corpus_.vocabulary(); ++t) {
    EXPECT_EQ(index_.postings(t).size(), corpus_.doc_frequency(t));
  }
}

TEST_F(IndexTest, EveryPostingIsGenuine) {
  for (TermId t = 0; t < corpus_.vocabulary(); ++t) {
    for (const Posting& p : index_.postings(t)) {
      const auto& terms = corpus_.terms_of(p.doc);
      ASSERT_TRUE(std::binary_search(terms.begin(), terms.end(), t))
          << "doc " << p.doc << " does not contain term " << t;
    }
  }
}

TEST_F(IndexTest, TermsPartitionedByRing) {
  for (TermId t = 0; t < corpus_.vocabulary(); ++t) {
    EXPECT_EQ(index_.peer_of_term(t),
              ring_.successor_of_key(
                  term_guid("term:" + std::to_string(t))));
  }
}

TEST_F(IndexTest, PublishRanksSortsPostings) {
  Rng rng(9);
  std::vector<double> ranks(corpus_.num_docs());
  for (auto& r : ranks) r = rng.uniform(0.1, 10.0);
  const std::vector<PeerId> owner(corpus_.num_docs(), 0);
  index_.publish_ranks(ranks, owner);

  for (TermId t = 0; t < corpus_.vocabulary(); ++t) {
    const auto& plist = index_.postings(t);
    for (std::size_t i = 1; i < plist.size(); ++i) {
      ASSERT_GE(plist[i - 1].rank, plist[i].rank);
    }
    for (const Posting& p : plist) {
      ASSERT_DOUBLE_EQ(p.rank, ranks[p.doc]);
    }
  }
}

TEST_F(IndexTest, PublishCountsIndexUpdateMessages) {
  std::vector<double> ranks(corpus_.num_docs(), 1.0);
  // All docs on peer 0: postings on other peers cost a message each.
  const std::vector<PeerId> owner(corpus_.num_docs(), 0);
  TrafficMeter meter;
  index_.publish_ranks(ranks, owner, &meter);
  EXPECT_EQ(meter.messages() + meter.local_updates(),
            index_.total_postings());
  EXPECT_GT(meter.messages(), 0u);
}

TEST_F(IndexTest, PublishOneUpdatesSingleDocument) {
  std::vector<double> ranks(corpus_.num_docs(), 1.0);
  const std::vector<PeerId> owner(corpus_.num_docs(), 0);
  index_.publish_ranks(ranks, owner);

  const NodeId doc = 42;
  const auto& terms = corpus_.terms_of(doc);
  ASSERT_FALSE(terms.empty());
  index_.publish_one(doc, terms, 99.0, 0);
  for (const TermId t : terms) {
    const auto& plist = index_.postings(t);
    const auto it = std::find_if(plist.begin(), plist.end(),
                                 [&](const Posting& p) { return p.doc == doc; });
    ASSERT_NE(it, plist.end());
    EXPECT_DOUBLE_EQ(it->rank, 99.0);
    // Re-sorted: the updated doc now leads its lists.
    EXPECT_EQ(plist.front().doc, doc);
  }
}

TEST_F(IndexTest, PublishOneInsertsNewDocument) {
  // A freshly inserted document gets postings added on the fly
  // (§2.4.2's index update path for new documents).
  const NodeId new_doc = corpus_.num_docs();  // beyond the corpus
  const std::vector<TermId> terms{0, 5, 10};
  const auto before = index_.total_postings();
  index_.publish_one(new_doc, terms, 2.5, 3);
  EXPECT_EQ(index_.total_postings(), before + 3);
  for (const TermId t : terms) {
    const auto& plist = index_.postings(t);
    EXPECT_TRUE(std::any_of(plist.begin(), plist.end(), [&](const Posting& p) {
      return p.doc == new_doc && p.rank == 2.5;
    }));
  }
}

TEST_F(IndexTest, PublishRanksValidatesSize) {
  std::vector<double> too_small(10, 1.0);
  const std::vector<PeerId> owner(corpus_.num_docs(), 0);
  EXPECT_THROW(index_.publish_ranks(too_small, owner), std::out_of_range);
}

}  // namespace
}  // namespace dprank
