// Convergence-schedule tests (PagerankOptions::schedule).
//
// Two contracts, each load-bearing for a different audience:
//  * Schedule::kFifo (the default) is BIT-IDENTICAL to the engine that
//    predates the scheduler: ranks, the full pass history, the traffic
//    ledger and the outbox peak hash to golden digests recorded on the
//    pre-scheduler build, at 1 and 4 threads, clean and churned. Anyone
//    not opting into the scheduler gets exactly the old engine.
//  * Schedule::kResidual converges at the same epsilon with materially
//    fewer cross-peer messages, at fifo-level quality against the
//    centralized oracle (Table 2's measure), and — like every engine
//    configuration — produces bit-identical results for every thread
//    count.

#include "pagerank/distributed_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/generator.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

// ---- fifo bit-compatibility ------------------------------------------

constexpr NodeId kDocs = 2'000;
constexpr PeerId kPeers = 40;

/// FNV-1a over every observable the compatibility promise covers.
class Fnv {
 public:
  void mix(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  template <typename T>
  void mix_value(const T& v) {
    mix(&v, sizeof(v));
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

std::uint64_t digest_run(std::uint64_t seed, std::uint32_t threads,
                         double availability) {
  const Digraph g = paper_graph(kDocs, seed);
  const auto placement = Placement::random(kDocs, kPeers, seed);
  PagerankOptions o;
  o.epsilon = 1e-3;
  o.threads = threads;
  DistributedPagerank engine(g, placement, o);
  DistributedRunResult run;
  if (availability < 1.0) {
    ChurnSchedule churn(kPeers, availability, seed);
    run = engine.run(&churn);
  } else {
    run = engine.run();
  }
  Fnv f;
  f.mix_value(run.passes);
  f.mix_value(run.converged);
  f.mix(engine.ranks().data(), engine.ranks().size() * sizeof(double));
  for (const PassStats& s : engine.pass_history()) {
    f.mix_value(s.pass);
    f.mix_value(s.docs_recomputed);
    f.mix_value(s.messages_sent);
    f.mix_value(s.messages_deferred);
    f.mix_value(s.messages_delivered_late);
    f.mix_value(s.local_updates);
    f.mix_value(s.max_peer_messages);
    f.mix_value(s.max_rel_change);
  }
  const TrafficMeter& t = engine.traffic();
  f.mix_value(t.messages());
  f.mix_value(t.local_updates());
  f.mix_value(t.bytes());
  f.mix_value(t.resends());
  f.mix_value(t.hop_transmissions());
  f.mix_value(engine.outbox_peak());
  return f.value();
}

struct GoldenEntry {
  std::uint64_t seed;
  double availability;
  std::uint32_t threads;
  std::uint64_t digest;
};

// Recorded on the build immediately preceding the scheduler and the
// contribution-store reindex (commit ad810a0), 2000 docs / 40 peers /
// epsilon 1e-3. These values must never change: fifo is the
// compatibility baseline.
constexpr GoldenEntry kGolden[] = {
    {7ULL, 1.00, 1, 0xe1f5136668ea4ddcULL},
    {7ULL, 1.00, 4, 0xe1f5136668ea4ddcULL},
    {7ULL, 0.85, 1, 0xb9b4652c2261524aULL},
    {7ULL, 0.85, 4, 0xb9b4652c2261524aULL},
    {21ULL, 1.00, 1, 0xb46e1c638e860edaULL},
    {21ULL, 1.00, 4, 0xb46e1c638e860edaULL},
    {21ULL, 0.85, 1, 0x130df7e04f634d08ULL},
    {21ULL, 0.85, 4, 0x130df7e04f634d08ULL},
    {42ULL, 1.00, 1, 0xae197f138e3ac718ULL},
    {42ULL, 1.00, 4, 0xae197f138e3ac718ULL},
    {42ULL, 0.85, 1, 0xf3aede7be2c2410eULL},
    {42ULL, 0.85, 4, 0xf3aede7be2c2410eULL},
};

TEST(ScheduleFifo, BitIdenticalToPreSchedulerEngine) {
  for (const GoldenEntry& entry : kGolden) {
    EXPECT_EQ(digest_run(entry.seed, entry.threads, entry.availability),
              entry.digest)
        << "seed=" << entry.seed << " threads=" << entry.threads
        << " availability=" << entry.availability;
  }
}

TEST(ScheduleFifo, DeferredCounterStaysZero) {
  const Digraph g = paper_graph(kDocs, 7);
  const auto placement = Placement::random(kDocs, kPeers, 7);
  PagerankOptions o;
  o.epsilon = 1e-3;
  DistributedPagerank engine(g, placement, o);
  (void)engine.run();
  for (const PassStats& s : engine.pass_history()) {
    EXPECT_EQ(s.docs_deferred, 0u);
  }
}

// ---- residual schedule -----------------------------------------------

struct ResidualOutcome {
  std::vector<double> ranks;
  std::uint64_t messages = 0;
  std::uint64_t passes = 0;
  std::uint64_t deferred = 0;
  bool converged = false;
};

ResidualOutcome run_schedule(const Digraph& g, const Placement& placement,
                             Schedule schedule, std::uint32_t threads,
                             bool adaptive = false) {
  PagerankOptions o;
  o.epsilon = 1e-3;
  o.threads = threads;
  o.schedule = schedule;
  o.adaptive_epsilon = adaptive;
  o.validate_every_n_passes = 16;  // exercise the scheduler invariants
  DistributedPagerank engine(g, placement, o);
  const DistributedRunResult run = engine.run();
  ResidualOutcome out;
  out.ranks = engine.ranks();
  out.messages = engine.traffic().messages();
  out.passes = run.passes;
  out.converged = run.converged;
  for (const PassStats& s : engine.pass_history()) {
    out.deferred += s.docs_deferred;
  }
  return out;
}

TEST(ScheduleResidual, FewerMessagesAtTable1Config) {
  // The Table 1 small configuration (10k docs, 500 peers, epsilon 1e-3,
  // bench seed 42): the residual schedule must save at least 20% of the
  // cross-peer update messages, the adaptive variant at least 25%.
  const Digraph g = paper_graph(10'000, 42);
  const auto placement = Placement::random(10'000, 500, 42);

  const ResidualOutcome fifo =
      run_schedule(g, placement, Schedule::kFifo, 1);
  const ResidualOutcome residual =
      run_schedule(g, placement, Schedule::kResidual, 1);
  const ResidualOutcome adaptive =
      run_schedule(g, placement, Schedule::kResidual, 1, /*adaptive=*/true);

  ASSERT_TRUE(fifo.converged);
  ASSERT_TRUE(residual.converged);
  ASSERT_TRUE(adaptive.converged);
  EXPECT_EQ(fifo.deferred, 0u);
  EXPECT_GT(residual.deferred, 0u);

  const auto saving = [&](const ResidualOutcome& r) {
    return 1.0 - static_cast<double>(r.messages) /
                     static_cast<double>(fifo.messages);
  };
  EXPECT_GE(saving(residual), 0.20)
      << "residual messages " << residual.messages << " vs fifo "
      << fifo.messages;
  EXPECT_GE(saving(adaptive), 0.25)
      << "adaptive messages " << adaptive.messages << " vs fifo "
      << fifo.messages;

  // Quality versus the centralized oracle (Table 2's measure): the
  // schedule must not cost ordering or value accuracy beyond the epsilon
  // tolerance fifo itself exhibits.
  const auto oracle = centralized_pagerank(g, {});
  const QualityReport qf = summarize_quality(fifo.ranks, oracle.ranks);
  const QualityReport qr = summarize_quality(residual.ranks, oracle.ranks);
  const QualityReport qa = summarize_quality(adaptive.ranks, oracle.ranks);
  EXPECT_LE(qr.avg, qf.avg + 2e-3);
  EXPECT_LE(qa.avg, qf.avg + 2e-3);
  EXPECT_GE(kendall_tau_sampled(residual.ranks, oracle.ranks),
            kendall_tau_sampled(fifo.ranks, oracle.ranks) - 0.01);
  EXPECT_GE(kendall_tau_sampled(adaptive.ranks, oracle.ranks),
            kendall_tau_sampled(fifo.ranks, oracle.ranks) - 0.01);
}

TEST(ScheduleResidual, ThreadCountInvariant) {
  // The residual order itself (sorting, deferral, adaptive thresholds)
  // must not observe the thread count: residual accumulation is sharded
  // and merged in fixed order exactly like every other engine fold.
  for (const std::uint64_t seed : {7ULL, 21ULL, 42ULL}) {
    const Digraph g = paper_graph(kDocs, seed);
    const auto placement = Placement::random(kDocs, kPeers, seed);
    for (const bool adaptive : {false, true}) {
      const ResidualOutcome one =
          run_schedule(g, placement, Schedule::kResidual, 1, adaptive);
      const ResidualOutcome four =
          run_schedule(g, placement, Schedule::kResidual, 4, adaptive);
      EXPECT_EQ(one.ranks, four.ranks)
          << "seed=" << seed << " adaptive=" << adaptive;
      EXPECT_EQ(one.messages, four.messages);
      EXPECT_EQ(one.passes, four.passes);
      EXPECT_EQ(one.deferred, four.deferred);
    }
  }
}

TEST(ScheduleResidual, ConvergesUnderChurn) {
  // Absent peers park updates; deferral must not interact badly with the
  // store-and-resend outbox (a deferred document that later receives a
  // late delivery still drains its residual).
  const Digraph g = paper_graph(kDocs, 21);
  const auto placement = Placement::random(kDocs, kPeers, 21);
  PagerankOptions o;
  o.epsilon = 1e-3;
  o.schedule = Schedule::kResidual;
  o.validate_every_n_passes = 8;
  DistributedPagerank engine(g, placement, o);
  ChurnSchedule churn(kPeers, 0.85, 21);
  const DistributedRunResult run = engine.run(&churn);
  EXPECT_TRUE(run.converged);

  PagerankOptions of = o;
  of.schedule = Schedule::kFifo;
  DistributedPagerank fifo(g, placement, of);
  ChurnSchedule churn2(kPeers, 0.85, 21);
  (void)fifo.run(&churn2);
  double l1 = 0.0;
  double norm = 0.0;
  for (NodeId v = 0; v < kDocs; ++v) {
    l1 += std::abs(engine.ranks()[v] - fifo.ranks()[v]);
    norm += std::abs(fifo.ranks()[v]);
  }
  EXPECT_LT(l1 / norm, 5e-3);
}

TEST(ScheduleResidual, MaxDeferBoundsStaleness) {
  // With an age cap of 1 every document is processed at least every
  // other pass; the run must still converge and defer strictly less than
  // the default cap allows.
  const Digraph g = paper_graph(kDocs, 42);
  const auto placement = Placement::random(kDocs, kPeers, 42);
  PagerankOptions tight;
  tight.epsilon = 1e-3;
  tight.schedule = Schedule::kResidual;
  tight.residual_max_defer = 1;
  DistributedPagerank eng_tight(g, placement, tight);
  ASSERT_TRUE(eng_tight.run().converged);

  PagerankOptions loose = tight;
  loose.residual_max_defer = 8;
  DistributedPagerank eng_loose(g, placement, loose);
  ASSERT_TRUE(eng_loose.run().converged);

  std::uint64_t tight_deferred = 0;
  for (const PassStats& s : eng_tight.pass_history()) {
    tight_deferred += s.docs_deferred;
  }
  std::uint64_t loose_deferred = 0;
  for (const PassStats& s : eng_loose.pass_history()) {
    loose_deferred += s.docs_deferred;
  }
  EXPECT_LT(tight_deferred, loose_deferred);
}

TEST(ScheduleResidual, DeferredTelemetryMatchesHistory) {
  obs::MetricsRegistry reg;
  const Digraph g = paper_graph(kDocs, 7);
  const auto placement = Placement::random(kDocs, kPeers, 7);
  PagerankOptions o;
  o.epsilon = 1e-3;
  o.schedule = Schedule::kResidual;
  DistributedPagerank engine(g, placement, o);
  engine.attach_metrics(reg);
  (void)engine.run();

  std::uint64_t total = 0;
  for (const PassStats& s : engine.pass_history()) total += s.docs_deferred;
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.contains("pagerank.docs_deferred"));
  EXPECT_EQ(snap.counters.at("pagerank.docs_deferred"),
            total);
  ASSERT_TRUE(snap.series.contains("pagerank.deferred"));
  EXPECT_EQ(snap.series.at("pagerank.deferred").size(),
            engine.pass_history().size());
}

}  // namespace
}  // namespace dprank
