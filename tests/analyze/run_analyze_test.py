#!/usr/bin/env python3
"""CTest driver for the dprank_analyze fixture corpus.

Checks, in order:

  1. The analyzer over tests/analyze/fixtures/ (astlite backend, pinned
     so the goldens do not depend on a libclang install) reproduces
     tests/analyze/golden/findings.json exactly and exits 1.
  2. A clean fixture subset exits 0 and reports clean.
  3. dprank_lint errors on a stale waiver (unused-waiver) and accepts a
     used one — the shared-waiver-table policy both tools rely on.

Run from anywhere: paths are derived from this file's location.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
from pathlib import Path

HERE = Path(__file__).resolve().parent
REPO = HERE.parent.parent
ANALYZER = REPO / "scripts" / "dprank_analyze"
LINT = REPO / "scripts" / "dprank_lint.py"
FIXTURES = HERE / "fixtures"
GOLDEN = HERE / "golden" / "findings.json"

failures: list[str] = []


def check(name: str, ok: bool, detail: str = "") -> None:
    tag = "ok" if ok else "FAIL"
    print(f"[{tag}] {name}" + (f": {detail}" if detail and not ok else ""))
    if not ok:
        failures.append(name)


def run(cmd: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, capture_output=True, text=True)


def fixture_files() -> list[str]:
    return sorted(str(p) for p in FIXTURES.rglob("*.cxx"))


def main() -> int:
    # 1. Full corpus vs golden.
    proc = run(
        [sys.executable, str(ANALYZER), "--root", str(FIXTURES),
         "--backend", "astlite", "--json", "-"] + fixture_files()
    )
    check("fixture sweep exits 1", proc.returncode == 1,
          f"exit={proc.returncode} stderr={proc.stderr.strip()}")
    try:
        got = json.loads(proc.stdout)
    except json.JSONDecodeError as exc:
        check("fixture sweep emits JSON", False, str(exc))
        got = {"findings": []}
    else:
        check("fixture sweep emits JSON", True)
    want = json.loads(GOLDEN.read_text())
    if got.get("findings") != want.get("findings"):

        def key(f: dict) -> tuple:
            return (f["file"], f["line"], f["rule"])

        got_keys = {key(f) for f in got.get("findings", [])}
        want_keys = {key(f) for f in want.get("findings", [])}
        detail = (f"missing={sorted(want_keys - got_keys)} "
                  f"extra={sorted(got_keys - want_keys)}")
        if got_keys == want_keys:
            detail = "same locations, message text drifted from golden"
        check("findings match golden", False, detail)
    else:
        check("findings match golden", True)

    # 2. A clean subset must exit 0 (and prove the tool does not just
    # flag everything it reads).
    clean = str(FIXTURES / "src" / "common" / "clock_ok.cxx")
    proc = run([sys.executable, str(ANALYZER), "--root", str(FIXTURES),
                "--backend", "astlite", clean])
    check("clean fixture exits 0", proc.returncode == 0,
          f"exit={proc.returncode} out={proc.stdout.strip()}")
    check("clean fixture reports clean", "clean" in proc.stdout,
          proc.stdout.strip())

    # 3. Lint waiver hygiene, on throwaway files so the real tree stays
    # out of the picture.
    with tempfile.TemporaryDirectory() as tmp:
        sim = Path(tmp) / "src" / "sim"
        sim.mkdir(parents=True)
        stale = sim / "stale.cpp"
        stale.write_text(
            "// dprank-lint: allow(wall-clock)\n"
            "int answer() { return 42; }\n"
        )
        proc = run([sys.executable, str(LINT), "--root", tmp, str(stale)])
        check("lint rejects stale waiver", proc.returncode == 1,
              f"exit={proc.returncode} out={proc.stdout.strip()}")
        check("lint names unused-waiver", "unused-waiver" in proc.stdout,
              proc.stdout.strip())

        used = sim / "used.cpp"
        used.write_text(
            "#include <chrono>\n"
            "double telemetry() {\n"
            "  // dprank-lint: allow(wall-clock)\n"
            "  auto t = std::chrono::steady_clock::now();\n"
            "  return static_cast<double>(t.time_since_epoch().count());\n"
            "}\n"
        )
        proc = run([sys.executable, str(LINT), "--root", tmp, str(used)])
        check("lint accepts used waiver", proc.returncode == 0,
              f"exit={proc.returncode} out={proc.stdout.strip()} "
              f"err={proc.stderr.strip()}")

    if failures:
        print(f"\n{len(failures)} check(s) failed: {', '.join(failures)}",
              file=sys.stderr)
        return 1
    print("\nall analyzer fixture checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
