// dprank_analyze fixture: waiver hygiene. A waiver that suppresses
// nothing is itself an error, and a waiver without a reason is
// malformed even when it does suppress a finding.

#include <cstdlib>

namespace fx {

// FINDING unused-waiver: nothing below trips nondet-source.
// dprank-analyze: allow(nondet-source) -- stale fixture waiver
inline int pure_add(int a, int b) {
  return a + b;
}

// FINDING malformed-waiver: no reason given (the rand() itself stays
// suppressed — the waiver is used, just malformed).
// dprank-analyze: allow(nondet-source)
inline int lazy_waiver() {
  return std::rand();
}

}  // namespace fx
