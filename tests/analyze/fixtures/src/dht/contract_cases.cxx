// dprank_analyze fixture: R5 contract-coverage. A class that declares
// validate() must be reached from somewhere outside its own
// translation-unit pair, or the contract is dead weight that silently
// rots.

#include <cstdint>

namespace fx {

// ok: contract_sweep.cxx calls this from another pair.
class SweptIndex {
 public:
  void validate() const;

 private:
  std::uint32_t entries_ = 0;
};

// FINDING contract-coverage: nothing anywhere calls this.
class OrphanBuffer {
 public:
  void validate() const;

 private:
  std::uint32_t capacity_ = 0;
};

// ok (waivered): declared for tests only, and says so.
class TestOnlyCache {
 public:
  // dprank-analyze: allow(contract-coverage) -- fixture test-only case
  void validate() const;
};

}  // namespace fx
