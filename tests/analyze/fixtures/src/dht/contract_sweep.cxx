// dprank_analyze fixture: the sweeping side of the R5 negative case.
// This file is a different pair from contract_cases.cxx, so the call
// below counts as reach for SweptIndex.

namespace fx {

class SweptIndex;

struct Sweeper {
  SweptIndex* index_;
  void sweep();
};

inline void run_sweep(Sweeper& s) {
  SweptIndex* idx = s.index_;
  idx->validate();
}

}  // namespace fx
