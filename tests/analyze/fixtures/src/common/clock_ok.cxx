// dprank_analyze fixture: R2 scope negative. src/common/ is not a
// simulation dir, so a wall-clock read here is fine (the CLI and bench
// harnesses time real work); platform RNG would still be flagged.

#include <chrono>

namespace fx {

inline double harness_elapsed_us(std::chrono::steady_clock::time_point t0) {
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

}  // namespace fx
