// dprank_analyze fixture: R1 unordered-iteration and R3 float-order.
// Placed under src/engines/ (relative to the fixture root) so both the
// simulation-dir scope and the float-order scope apply. Each struct is
// one golden case; names are unique so the sorted-materialization
// escape cannot leak across cases.

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fx {

struct Channel {
  void send(std::uint32_t peer, double value);
};

struct Rng {
  std::uint64_t next();
};

// FINDING unordered-iteration: message emission in hash order.
struct EmitsInHashOrder {
  std::unordered_map<std::uint32_t, double> outstanding_;
  Channel channel_;
  void drain() {
    for (const auto& [peer, value] : outstanding_) {
      channel_.send(peer, value);
    }
  }
};

// FINDING unordered-iteration: history append without a sort.
struct AppendsUnsorted {
  std::unordered_set<std::uint32_t> dirty_;
  std::vector<std::uint32_t> history_;
  void snapshot() {
    for (const auto v : dirty_) {
      history_.push_back(v);
    }
  }
};

// FINDING unordered-iteration: RNG stream consumed in hash order (the
// draw sequence reorders every later draw).
struct DrawsInHashOrder {
  std::unordered_set<std::uint32_t> pending_;
  Rng rng;
  std::vector<double> noise_;
  void jitter() {
    for (const auto v : pending_) {
      noise_.push_back(static_cast<double>(rng.next() ^ v));
    }
  }
};

// ok: the materialized vector is sorted before anyone observes it.
struct SortedMaterialization {
  std::unordered_set<std::uint32_t> touched_;
  std::vector<std::uint32_t> order_;
  void snapshot() {
    for (const auto v : touched_) {
      order_.push_back(v);
    }
    std::sort(order_.begin(), order_.end());
  }
};

// ok: vectors iterate in index order.
struct VectorIsFine {
  std::vector<std::uint32_t> items_;
  Channel channel_;
  void drain() {
    for (const auto v : items_) channel_.send(v, 1.0);
  }
};

// ok (waivered): the fixture's story says order is immaterial here.
struct WaivedEmit {
  std::unordered_map<std::uint32_t, double> queued_;
  Channel channel_;
  void drain() {
    // dprank-analyze: allow(unordered-iteration) -- fixture waiver case
    for (const auto& [peer, value] : queued_) {
      channel_.send(peer, value);
    }
  }
};

// FINDING float-order: double fold in hash order.
struct FloatFoldInHashOrder {
  std::unordered_map<std::uint32_t, double> contrib_;
  double total_ = 0.0;
  void fold() {
    double sum = 0.0;
    for (const auto& [v, c] : contrib_) {
      sum += c;
    }
    total_ = sum;
  }
};

// ok: integer accumulation commutes exactly.
struct IntCountIsFine {
  std::unordered_set<std::uint32_t> seen_;
  std::uint64_t count_ = 0;
  void tally() {
    std::uint64_t n = 0;
    for (const auto v : seen_) {
      n += v % 2;
    }
    count_ = n;
  }
};

}  // namespace fx
