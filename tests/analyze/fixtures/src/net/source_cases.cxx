// dprank_analyze fixture: R2 nondet-source. Under src/net/ (a
// simulation dir), so wall-clock reads are in scope alongside the
// everywhere-scoped platform-RNG and pointer-ordering patterns.

#include <chrono>
#include <cstdlib>
#include <functional>
#include <map>
#include <random>
#include <unordered_map>

namespace fx {

struct Message {
  int id;
};

// FINDING nondet-source: platform RNG.
inline int roll_dice() {
  return std::rand() % 6;
}

// FINDING nondet-source: platform RNG.
inline unsigned seed_from_entropy() {
  std::random_device rd;
  return rd();
}

// FINDING nondet-source: wall clock in simulation code.
inline double batch_deadline_us() {
  const auto now = std::chrono::steady_clock::now();
  return static_cast<double>(now.time_since_epoch().count());
}

// ok (waivered): telemetry that measures the harness.
inline double waived_telemetry_read() {
  // dprank-analyze: allow(nondet-source) -- fixture telemetry waiver case
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(t.time_since_epoch().count());
}

// FINDING nondet-source: std::map keyed on pointers orders by address.
struct OrdersByAddress {
  std::map<Message*, int> by_ptr_;
};

// FINDING nondet-source: hashing addresses.
struct HashesAddresses {
  std::unordered_map<Message*, int> cache_;
};

// FINDING nondet-source: explicit address comparator.
using PtrLess = std::less<Message*>;

// ok: value keys order deterministically.
struct KeyedById {
  std::map<int, int> by_id_;
};

}  // namespace fx
