// dprank_analyze fixture: R4 thread-capture. A by-ref lambda handed to
// a thread-pool region API must index per-shard state with a lambda
// parameter (the peer-sharded pattern) or forward the parameter to a
// callable; anything else races or serializes on shared state.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fx {

struct Pool {
  template <typename Fn>
  void run(unsigned shards, Fn&& fn);
};

template <typename Fn>
void parallel_region(std::size_t shards, Fn&& fn);

// FINDING thread-capture: by-ref capture mutating shared state with no
// shard-indexed access.
struct SharedAccumulator {
  Pool* pool_;
  double total_ = 0.0;
  void reduce(unsigned shards) {
    pool_->run(shards, [&](std::size_t i, unsigned slot) {
      total_ += 1.0;
    });
  }
};

// ok: the peer-sharded pattern — every write lands in a slot owned by
// exactly one worker.
struct ShardedWriter {
  Pool* pool_;
  std::vector<double> per_shard_;
  std::vector<std::uint32_t> peers_;
  void reduce(unsigned shards) {
    pool_->run(shards, [&](std::size_t i, unsigned slot) {
      per_shard_[slot] += static_cast<double>(peers_[i]);
    });
  }
};

// ok: the shard index is forwarded to a callable that owns the split.
struct ForwardsIndex {
  void reduce() {
    parallel_region(4, [&](std::size_t i, unsigned slot) {
      consume(i, slot);
    });
  }
  void consume(std::size_t i, unsigned slot);
};

// ok: by-value capture cannot alias caller state.
struct ByValueCapture {
  Pool* pool_;
  void scan(unsigned shards) {
    pool_->run(shards, [=](std::size_t i, unsigned) {
      (void)i;
    });
  }
};

// ok (waivered): the fixture's story claims external serialization.
struct WaivedRegion {
  Pool* pool_;
  double total_ = 0.0;
  void reduce(unsigned shards) {
    // dprank-analyze: allow(thread-capture) -- fixture waiver case
    pool_->run(shards, [&](std::size_t, unsigned) { total_ += 1.0; });
  }
};

}  // namespace fx
