#include "dht/pastry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace dprank {
namespace {

PeerId brute_force_owner(const PastryRing& ring, Guid key) {
  PeerId best = kInvalidPeer;
  U128 best_dist = U128::max();
  for (const PeerId p : ring.peers()) {
    const U128 dist = circular_distance(ring.id_of(p), key);
    if (best == kInvalidPeer || dist < best_dist ||
        (dist == best_dist &&
         ring_distance(key, ring.id_of(p)) <
             ring_distance(key, ring.id_of(best)))) {
      best = p;
      best_dist = dist;
    }
  }
  return best;
}

TEST(CircularDistance, SymmetricAndMinimal) {
  EXPECT_EQ(circular_distance(Guid{0, 10}, Guid{0, 3}), (U128{0, 7}));
  EXPECT_EQ(circular_distance(Guid{0, 3}, Guid{0, 10}), (U128{0, 7}));
  // Antipodal-ish wraparound: distance never exceeds 2^127.
  const U128 d =
      circular_distance(Guid{0, 0}, Guid{~0ULL, ~0ULL});  // = 1 via wrap
  EXPECT_EQ(d, (U128{0, 1}));
}

TEST(Pastry, DigitsExtractCorrectly) {
  const Guid id{0xABCDEF0123456789ULL, 0x1122334455667788ULL};
  EXPECT_EQ(PastryRing::digit(id, 0), 0xA);
  EXPECT_EQ(PastryRing::digit(id, 1), 0xB);
  EXPECT_EQ(PastryRing::digit(id, 15), 0x9);
  EXPECT_EQ(PastryRing::digit(id, 16), 0x1);
  EXPECT_EQ(PastryRing::digit(id, 31), 0x8);
}

TEST(Pastry, SharedPrefix) {
  const Guid a{0xABC0000000000000ULL, 0};
  const Guid b{0xABD0000000000000ULL, 0};
  EXPECT_EQ(PastryRing::shared_prefix_digits(a, b), 2);
  EXPECT_EQ(PastryRing::shared_prefix_digits(a, a), 32);
  const Guid c{0x1BC0000000000000ULL, 0};
  EXPECT_EQ(PastryRing::shared_prefix_digits(a, c), 0);
}

TEST(Pastry, EmptyRingThrows) {
  const PastryRing ring;
  EXPECT_THROW(ring.owner_of_key(Guid{1, 1}), std::logic_error);
}

TEST(Pastry, JoinLeaveMembership) {
  PastryRing ring(8);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_THROW(ring.join(3, Guid{1, 1}), std::invalid_argument);
  ring.leave(3);
  EXPECT_FALSE(ring.contains(3));
  ring.leave(3);  // idempotent
  EXPECT_EQ(ring.size(), 7u);
}

TEST(Pastry, OwnershipMatchesBruteForce) {
  PastryRing ring(64);
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Guid key{rng(), rng()};
    EXPECT_EQ(ring.owner_of_key(key), brute_force_owner(ring, key));
  }
}

TEST(Pastry, OwnerOfOwnIdIsSelf) {
  PastryRing ring(32);
  for (const PeerId p : ring.peers()) {
    EXPECT_EQ(ring.owner_of_key(ring.id_of(p)), p);
  }
}

TEST(Pastry, RouteReachesOwner) {
  PastryRing ring(100);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const auto from = static_cast<PeerId>(rng.bounded(100));
    const Guid key{rng(), rng()};
    const auto route = ring.route(from, key);
    EXPECT_EQ(route.destination, ring.owner_of_key(key));
    if (route.destination == from) {
      EXPECT_EQ(route.hop_count(), 0u);
    } else {
      ASSERT_FALSE(route.hops.empty());
      EXPECT_EQ(route.hops.back(), route.destination);
    }
  }
}

TEST(Pastry, HopsAreLogBase16) {
  PastryRing ring(256);
  Rng rng(9);
  double total = 0;
  std::size_t worst = 0;
  constexpr int kLookups = 500;
  for (int i = 0; i < kLookups; ++i) {
    const auto from = static_cast<PeerId>(rng.bounded(256));
    const auto route = ring.route(from, Guid{rng(), rng()});
    total += static_cast<double>(route.hop_count());
    worst = std::max(worst, route.hop_count());
  }
  // Pastry: ~log_16(N) = 2 digits for 256 nodes; allow slack for the
  // leaf-set final hop.
  EXPECT_LT(total / kLookups, 4.0);
  EXPECT_LE(worst, 8u);
}

TEST(Pastry, PrefixImprovesAlongRoute) {
  PastryRing ring(128);
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    const auto from = static_cast<PeerId>(rng.bounded(128));
    const Guid key{rng(), rng()};
    const auto route = ring.route(from, key);
    int prev = PastryRing::shared_prefix_digits(ring.id_of(from), key);
    bool used_leafset = false;
    for (const PeerId hop : route.hops) {
      const int len = PastryRing::shared_prefix_digits(ring.id_of(hop), key);
      if (len <= prev) {
        // Only the leaf-set fallback hop may fail to extend the prefix,
        // and it must be the final hop (straight to the owner).
        EXPECT_FALSE(used_leafset);
        used_leafset = true;
        EXPECT_EQ(hop, route.destination);
      }
      prev = len;
    }
  }
}

TEST(Pastry, RoutingSurvivesChurn) {
  PastryRing ring(64);
  Rng rng(13);
  for (PeerId p = 0; p < 64; p += 3) ring.leave(p);
  const auto live = ring.peers();
  for (int i = 0; i < 200; ++i) {
    const PeerId from = live[rng.bounded(live.size())];
    const Guid key{rng(), rng()};
    const auto route = ring.route(from, key);
    EXPECT_EQ(route.destination, brute_force_owner(ring, key));
  }
}

TEST(Pastry, OwnershipDiffersFromChordSometimes) {
  // Pastry owns by numeric closeness, Chord by successor: the two rules
  // must disagree on a noticeable fraction of keys (those closer to
  // their predecessor).
  PastryRing pastry(64);
  ChordRing chord(64);
  Rng rng(15);
  int differ = 0;
  constexpr int kKeys = 1000;
  for (int i = 0; i < kKeys; ++i) {
    const Guid key{rng(), rng()};
    if (pastry.owner_of_key(key) != chord.successor_of_key(key)) ++differ;
  }
  EXPECT_GT(differ, kKeys / 4);  // expect ~half
  EXPECT_LT(differ, 3 * kKeys / 4);
}

}  // namespace
}  // namespace dprank
