#include "common/table.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <string>

namespace dprank {
namespace {

TEST(TextTable, RejectsEmptyHeader) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(TextTable, RejectsWideRow) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"name", "value"});
  t.add_row({"only-name"});
  EXPECT_EQ(t.rows(), 1u);
  const std::string out = t.to_string();
  EXPECT_NE(out.find("only-name"), std::string::npos);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"id", "count"});
  t.add_row({"x", "1"});
  t.add_row({"longer-id", "12345"});
  const std::string out = t.to_string();
  std::istringstream is(out);
  std::string line1, rule, line3, line4;
  std::getline(is, line1);
  std::getline(is, rule);
  std::getline(is, line3);
  std::getline(is, line4);
  EXPECT_EQ(line3.size(), line4.size());
  // Numeric column is right-aligned: "1" ends where "12345" ends.
  EXPECT_EQ(line3.back(), '1');
  EXPECT_EQ(line4.back(), '5');
}

TEST(TextTable, HeaderRuleSpansTable) {
  TextTable t({"aa", "bb"});
  t.add_row({"1", "2"});
  const std::string out = t.to_string();
  std::istringstream is(out);
  std::string header, rule;
  std::getline(is, header);
  std::getline(is, rule);
  EXPECT_EQ(rule, std::string(header.size(), '-'));
}

TEST(Format, SignificantDigits) {
  EXPECT_EQ(format_sig(1.5), "1.5");
  EXPECT_EQ(format_sig(0.00123, 3), "0.00123");
  EXPECT_EQ(format_sig(123456, 3), "1.23e+05");
  EXPECT_EQ(format_sig(2.0, 3), "2");
}

TEST(Format, NonFinite) {
  EXPECT_EQ(format_sig(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(format_sig(-std::numeric_limits<double>::infinity()), "-inf");
  EXPECT_EQ(format_sig(std::nan("")), "nan");
}

TEST(Format, Fixed) {
  EXPECT_EQ(format_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(format_fixed(2.0, 1), "2.0");
  EXPECT_EQ(format_fixed(-0.5, 3), "-0.500");
}

TEST(Format, CountSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(1234567), "1,234,567");
  EXPECT_EQ(format_count(1000000000ULL), "1,000,000,000");
}

}  // namespace
}  // namespace dprank
