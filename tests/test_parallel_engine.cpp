// Sequential-vs-parallel equivalence for DistributedPagerank.
//
// The contract under test (see distributed_engine.hpp): the thread count
// changes wall time only. For ANY configuration, running the same seeded
// experiment at --threads=1 and --threads=4 must produce bit-identical
// ranks, pass history, traffic ledger and convergence record — on the
// batched fast path (clean, churn) and on the sequential-exchange slow
// path (overlay, crash faults) alike.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <vector>

#include "dht/ring.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generator.hpp"
#include "net/ip_cache.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/distributed_engine.hpp"

namespace dprank {
namespace {

constexpr NodeId kDocs = 2'000;
constexpr PeerId kPeers = 40;

struct Scenario {
  std::uint32_t threads = 1;
  std::uint64_t seed = 42;
  double availability = 1.0;  // < 1 = churn
  bool overlay = false;       // chord ring + ip cache (slow path)
  bool crash_faults = false;  // drop + crash plan + audit (slow path)
  bool coalesce = false;      // §4.6.1 batch billing (fast path only)
  std::uint64_t max_passes = 0;  // 0 = engine default
};

struct Capture {
  DistributedRunResult run;
  std::vector<double> ranks;
  std::vector<PassStats> history;
  std::uint64_t messages = 0;
  std::uint64_t batched_updates = 0;
  std::uint64_t local_updates = 0;
  std::uint64_t resends = 0;
  std::uint64_t hops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t outbox_peak = 0;
};

Capture run_scenario(const Scenario& sc) {
  const Digraph g = paper_graph(kDocs, sc.seed);
  const auto placement = Placement::random(kDocs, kPeers, sc.seed);
  PagerankOptions o;
  o.epsilon = 1e-3;
  o.threads = sc.threads;
  o.coalesce_wire = sc.coalesce;
  if (sc.max_passes != 0) o.max_passes = sc.max_passes;
  DistributedPagerank engine(g, placement, o);

  const ChordRing ring(kPeers);
  IpCache cache(true);
  if (sc.overlay) engine.attach_overlay(ring, cache);

  std::optional<FaultPlan> plan;
  if (sc.crash_faults) {
    FaultPlanConfig fc;
    fc.drop_probability = 0.05;
    fc.crash_probability = 0.01;
    fc.crash_downtime_passes = 2;
    fc.acked_delivery = true;
    fc.seed = sc.seed;
    plan.emplace(fc);
    engine.attach_fault_plan(*plan);
    engine.enable_mass_audit();
  }

  Capture cap;
  if (sc.availability < 1.0) {
    ChurnSchedule churn(kPeers, sc.availability, sc.seed);
    cap.run = engine.run(&churn);
  } else {
    cap.run = engine.run();
  }
  cap.ranks = engine.ranks();
  cap.history = engine.pass_history();
  cap.messages = engine.traffic().messages();
  cap.batched_updates = engine.traffic().batched_updates();
  cap.local_updates = engine.traffic().local_updates();
  cap.resends = engine.traffic().resends();
  cap.hops = engine.traffic().hop_transmissions();
  cap.bytes = engine.traffic().bytes();
  cap.outbox_peak = engine.outbox_peak();
  return cap;
}

void expect_identical(const Capture& a, const Capture& b) {
  ASSERT_EQ(a.run.passes, b.run.passes);
  EXPECT_EQ(a.run.converged, b.run.converged);
  EXPECT_EQ(a.run.mass_ratio, b.run.mass_ratio);
  EXPECT_EQ(a.run.repair_rounds, b.run.repair_rounds);

  ASSERT_EQ(a.ranks.size(), b.ranks.size());
  for (std::size_t v = 0; v < a.ranks.size(); ++v) {
    ASSERT_EQ(a.ranks[v], b.ranks[v]) << "rank diverged at doc " << v;
  }

  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    const PassStats& x = a.history[i];
    const PassStats& y = b.history[i];
    ASSERT_EQ(x.pass, y.pass);
    EXPECT_EQ(x.docs_recomputed, y.docs_recomputed) << "pass " << i;
    EXPECT_EQ(x.messages_sent, y.messages_sent) << "pass " << i;
    EXPECT_EQ(x.messages_deferred, y.messages_deferred) << "pass " << i;
    EXPECT_EQ(x.messages_delivered_late, y.messages_delivered_late)
        << "pass " << i;
    EXPECT_EQ(x.local_updates, y.local_updates) << "pass " << i;
    EXPECT_EQ(x.max_peer_messages, y.max_peer_messages) << "pass " << i;
    EXPECT_EQ(x.max_rel_change, y.max_rel_change) << "pass " << i;
    EXPECT_EQ(x.crashes, y.crashes) << "pass " << i;
    EXPECT_EQ(x.recovered_docs, y.recovered_docs) << "pass " << i;
    EXPECT_EQ(x.retransmissions, y.retransmissions) << "pass " << i;
    EXPECT_EQ(x.repair_messages, y.repair_messages) << "pass " << i;
  }

  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.batched_updates, b.batched_updates);
  EXPECT_EQ(a.local_updates, b.local_updates);
  EXPECT_EQ(a.resends, b.resends);
  EXPECT_EQ(a.hops, b.hops);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.outbox_peak, b.outbox_peak);
}

const std::uint64_t kSeeds[] = {7, 21, 42};

TEST(ParallelEngine, CleanRunBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    const Capture seq = run_scenario({.threads = 1, .seed = seed});
    const Capture par = run_scenario({.threads = 4, .seed = seed});
    ASSERT_TRUE(seq.run.converged);
    expect_identical(seq, par);
  }
}

TEST(ParallelEngine, ChurnRunBitIdenticalAcrossThreadCounts) {
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    const Capture seq =
        run_scenario({.threads = 1, .seed = seed, .availability = 0.7});
    const Capture par =
        run_scenario({.threads = 4, .seed = seed, .availability = 0.7});
    ASSERT_TRUE(seq.run.converged);
    ASSERT_GT(seq.outbox_peak, 0u);  // churn actually parked updates
    expect_identical(seq, par);
  }
}

TEST(ParallelEngine, OverlayRunBitIdenticalAcrossThreadCounts) {
  // Overlay runs take the sequential-exchange slow path (the ip cache
  // warms in emission order); only the compute phase parallelizes, and
  // the result must not notice.
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    const Capture seq =
        run_scenario({.threads = 1, .seed = seed, .overlay = true});
    const Capture par =
        run_scenario({.threads = 4, .seed = seed, .overlay = true});
    ASSERT_TRUE(seq.run.converged);
    ASSERT_GT(seq.hops, seq.messages);  // DHT routing actually billed
    expect_identical(seq, par);
  }
}

TEST(ParallelEngine, CrashFaultRunBitIdenticalAcrossThreadCounts) {
  // Fault plans consume RNG draws in emission order — the slow path
  // keeps that order canonical, so the full drop/crash/recovery/audit
  // history must replay identically under any thread count.
  for (const std::uint64_t seed : kSeeds) {
    SCOPED_TRACE(seed);
    const Capture seq =
        run_scenario({.threads = 1, .seed = seed, .crash_faults = true});
    const Capture par =
        run_scenario({.threads = 4, .seed = seed, .crash_faults = true});
    ASSERT_TRUE(seq.run.converged);
    ASSERT_GT(seq.resends, 0u);  // faults actually fired
    expect_identical(seq, par);
  }
}

TEST(ParallelEngine, ChurnPlusCrashFaultsBitIdenticalAcrossThreadCounts) {
  // Churn layered on a crash plan may not converge before the cap (lost
  // mass keeps residuals hot); equivalence must hold either way, so the
  // run is capped and convergence deliberately not asserted.
  const Capture seq = run_scenario({.threads = 1,
                                    .seed = 42,
                                    .availability = 0.75,
                                    .crash_faults = true,
                                    .max_passes = 150});
  const Capture par = run_scenario({.threads = 4,
                                    .seed = 42,
                                    .availability = 0.75,
                                    .crash_faults = true,
                                    .max_passes = 150});
  expect_identical(seq, par);
}

TEST(ParallelEngine, ThreeThreadsMatchFourThreads) {
  // Odd worker counts shard differently; results may not notice.
  const Capture three = run_scenario({.threads = 3, .seed = 21});
  const Capture four = run_scenario({.threads = 4, .seed = 21});
  expect_identical(three, four);
}

TEST(ParallelEngine, CoalescedBillingKeepsRanksAndCountsUpdates) {
  // coalesce_wire changes the traffic model only: one wire message per
  // (source, destination) pair per pass carrying k updates behind a
  // header (§4.6.1). Convergence must be untouched and the ledger must
  // reconcile exactly against the per-update billing.
  const Capture plain = run_scenario({.threads = 1, .seed = 42});
  const Capture co = run_scenario({.threads = 1, .seed = 42, .coalesce = true});
  const Capture co4 = run_scenario({.threads = 4, .seed = 42, .coalesce = true});
  expect_identical(co, co4);  // billing mode composes with threading

  ASSERT_EQ(plain.run.passes, co.run.passes);
  ASSERT_EQ(plain.ranks.size(), co.ranks.size());
  for (std::size_t v = 0; v < co.ranks.size(); ++v) {
    ASSERT_EQ(plain.ranks[v], co.ranks[v]);
  }
  // Every delivered update rides in some batch: the coalesced run's
  // batched_updates equals the plain run's message count (clean run — no
  // outbox drains, which always bill per update).
  EXPECT_EQ(plain.batched_updates, 0u);
  EXPECT_EQ(co.batched_updates, plain.messages);
  EXPECT_LT(co.messages, plain.messages);  // coalescing actually batches
  // Wire framing: header per batch message plus payload per update.
  EXPECT_EQ(co.bytes, co.messages * 16u + co.batched_updates * 24u);
  EXPECT_EQ(co.local_updates, plain.local_updates);
  // Pass history counts wire messages, so it reconciles with the meter
  // in both billing modes.
  std::uint64_t sent = 0;
  for (const PassStats& p : co.history) sent += p.messages_sent;
  EXPECT_EQ(sent, co.messages);
}

TEST(ParallelEngine, ThreadsBeyondPeersAreHarmless) {
  const Digraph g = paper_graph(60, 5);
  const auto placement = Placement::random(60, 3, 5);
  PagerankOptions o;
  o.epsilon = 1e-3;
  o.threads = 16;  // far more workers than peers
  DistributedPagerank engine(g, placement, o);
  const auto run = engine.run();
  EXPECT_TRUE(run.converged);

  PagerankOptions o1 = o;
  o1.threads = 1;
  DistributedPagerank ref(g, placement, o1);
  const auto ref_run = ref.run();
  ASSERT_EQ(ref_run.passes, run.passes);
  for (std::size_t v = 0; v < ref.ranks().size(); ++v) {
    ASSERT_EQ(ref.ranks()[v], engine.ranks()[v]);
  }
}

}  // namespace
}  // namespace dprank
