// Fault-injection tests: the chaotic-iteration protocol under lossy and
// duplicating delivery (extension; the paper assumes reliable transport
// plus the §3.1 outbox).

#include <gtest/gtest.h>

#include "fault/fault_plan.hpp"
#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

#include <vector>

namespace dprank {
namespace {

PagerankOptions opts(double eps) {
  PagerankOptions o;
  o.epsilon = eps;
  return o;
}

TEST(Faults, ValidatesProbabilities) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 2, 1);
  DistributedPagerank engine(g, p, opts(1e-3));
  EXPECT_THROW(engine.inject_faults({.drop_probability = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(engine.inject_faults({.drop_probability = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(engine.inject_faults({.duplicate_probability = 1.5}),
               std::invalid_argument);
}

TEST(Faults, InjectAfterRunRejected) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 2, 1);
  DistributedPagerank engine(g, p, opts(1e-3));
  (void)engine.run();
  EXPECT_THROW(engine.inject_faults({.drop_probability = 0.1}),
               std::logic_error);
}

TEST(Faults, DuplicatesAreHarmless) {
  // Newest-value-wins contribution cells make duplicate delivery purely
  // a traffic cost: the fixed point is identical.
  const Digraph g = paper_graph(2000, 12);
  const auto p = Placement::random(2000, 40, 12);

  DistributedPagerank clean(g, p, opts(1e-5));
  ASSERT_TRUE(clean.run().converged);

  DistributedPagerank dup(g, p, opts(1e-5));
  dup.inject_faults({.duplicate_probability = 0.3, .seed = 5});
  ASSERT_TRUE(dup.run().converged);

  EXPECT_GT(dup.duplicated_messages(), 0u);
  EXPECT_GT(dup.traffic().messages(), clean.traffic().messages());
  EXPECT_LT(summarize_quality(dup.ranks(), clean.ranks()).max, 1e-12);
}

TEST(Faults, ModerateLossDegradesGracefully) {
  // A dropped update leaves one stale contribution; unless it was the
  // link's final update, a later one repairs it. Accuracy therefore
  // degrades smoothly with the drop rate instead of collapsing.
  const Digraph g = paper_graph(3000, 13);
  const auto p = Placement::random(3000, 50, 13);
  const auto ref = centralized_pagerank(g, 0.85, 1e-12).ranks;

  double prev_err = 0.0;
  for (const double drop : {0.0, 0.05, 0.20}) {
    DistributedPagerank engine(g, p, opts(1e-4));
    if (drop > 0) {
      engine.inject_faults({.drop_probability = drop, .seed = 7});
    }
    ASSERT_TRUE(engine.run().converged) << "drop=" << drop;
    const auto q = summarize_quality(engine.ranks(), ref);
    EXPECT_GE(q.avg, prev_err * 0.5) << "drop=" << drop;
    prev_err = q.avg;
    // Even at 20% loss the typical document stays within a few percent.
    if (drop == 0.20) {
      EXPECT_LT(q.p50, 0.05);
      EXPECT_GT(engine.dropped_messages(), 0u);
    }
  }
}

TEST(Faults, LossNeverPreventsTermination) {
  const Digraph g = paper_graph(1500, 14);
  const auto p = Placement::random(1500, 30, 14);
  for (const double drop : {0.5, 0.9}) {
    DistributedPagerank engine(g, p, opts(1e-3));
    engine.inject_faults({.drop_probability = drop, .seed = 11});
    const auto run = engine.run();
    EXPECT_TRUE(run.converged) << "drop=" << drop;
    // Heavy loss usually *shortens* the run (updates stop propagating).
    EXPECT_LT(run.passes, 10'000u);
  }
}

TEST(Faults, OutboxPathStaysReliableUnderChurn) {
  // Faults model the direct path; the §3.1 store-and-resend path is
  // reliable by construction, so churn + loss still converges and
  // deferred messages are all eventually delivered.
  const Digraph g = paper_graph(1500, 15);
  const auto p = Placement::random(1500, 30, 15);
  ChurnSchedule churn(30, 0.5, 15);
  DistributedPagerank engine(g, p, opts(1e-3));
  engine.inject_faults({.drop_probability = 0.1, .seed = 13});
  const auto run = engine.run(&churn);
  EXPECT_TRUE(run.converged);
  EXPECT_GT(engine.outbox_peak(), 0u);
}

// ---- FaultPlan unit tests ----

TEST(FaultPlanTest, ValidatesConfig) {
  EXPECT_THROW(FaultPlan({.drop_probability = 1.0}), std::invalid_argument);
  EXPECT_THROW(FaultPlan({.drop_probability = -0.1}), std::invalid_argument);
  EXPECT_THROW(FaultPlan({.duplicate_probability = 1.5}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan({.reorder_probability = 2.0}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan({.crash_probability = -0.5}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan({.partitions = {{.fraction = 0.0}}}),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan({.partitions = {{.fraction = 1.0}}}),
               std::invalid_argument);
  const FaultPlanConfig empty_partition{
      .partitions = {{.start_pass = 1, .duration_passes = 0}}};
  EXPECT_THROW(FaultPlan{empty_partition}, std::invalid_argument);
  EXPECT_THROW(FaultPlan({.ack_timeout_passes = 0}), std::invalid_argument);
}

TEST(FaultPlanTest, BeginPassMustIncrease) {
  FaultPlan plan({.drop_probability = 0.1});
  (void)plan.begin_pass(0, 4);
  (void)plan.begin_pass(1, 4);
  EXPECT_THROW((void)plan.begin_pass(1, 4), std::logic_error);
  EXPECT_THROW((void)plan.begin_pass(0, 4), std::logic_error);
}

TEST(FaultPlanTest, DeterministicReplay) {
  const FaultPlanConfig config{
      .drop_probability = 0.1,
      .duplicate_probability = 0.05,
      .reorder_probability = 0.3,
      .reorder_window = 4,
      .crashes = {{.pass = 2, .peer = 3}},
      .crash_probability = 0.02,
      .partitions = {{.start_pass = 4, .duration_passes = 3}},
      .seed = 99};
  FaultPlan a(config);
  FaultPlan b(config);
  for (std::uint64_t pass = 0; pass < 12; ++pass) {
    EXPECT_EQ(a.begin_pass(pass, 16), b.begin_pass(pass, 16));
    for (PeerId p = 0; p < 16; ++p) {
      for (PeerId q = 0; q < 16; ++q) {
        EXPECT_EQ(a.reachable(p, q), b.reachable(p, q));
      }
    }
    for (int i = 0; i < 40; ++i) {
      const SendFate fa = a.fate_for_send();
      const SendFate fb = b.fate_for_send();
      EXPECT_EQ(fa.dropped, fb.dropped);
      EXPECT_EQ(fa.duplicated, fb.duplicated);
      EXPECT_EQ(fa.delay_passes, fb.delay_passes);
    }
  }
}

TEST(FaultPlanTest, CrashSamplingDoesNotPerturbSendFates) {
  // Fate and crash decisions draw from independent streams: adding crash
  // pressure replays the identical drop/duplicate history.
  FaultPlan quiet({.drop_probability = 0.2, .seed = 5});
  FaultPlan crashy(
      {.drop_probability = 0.2, .crash_probability = 0.1, .seed = 5});
  for (std::uint64_t pass = 0; pass < 6; ++pass) {
    (void)quiet.begin_pass(pass, 32);
    (void)crashy.begin_pass(pass, 32);
    for (int i = 0; i < 100; ++i) {
      EXPECT_EQ(quiet.fate_for_send().dropped,
                crashy.fate_for_send().dropped);
    }
  }
}

TEST(FaultPlanTest, ExplicitCrashesFireOnSchedule) {
  FaultPlan plan({.crashes = {{.pass = 3, .peer = 5},
                              {.pass = 3, .peer = 2},
                              {.pass = 7, .peer = 0}}});
  EXPECT_TRUE(plan.begin_pass(0, 8).empty());
  EXPECT_TRUE(plan.begin_pass(1, 8).empty());
  EXPECT_TRUE(plan.begin_pass(2, 8).empty());
  EXPECT_EQ(plan.begin_pass(3, 8), (std::vector<PeerId>{2, 5}));
  EXPECT_TRUE(plan.begin_pass(4, 8).empty());
  (void)plan.begin_pass(5, 8);
  (void)plan.begin_pass(6, 8);
  EXPECT_EQ(plan.begin_pass(7, 8), (std::vector<PeerId>{0}));
  EXPECT_EQ(plan.crashes_injected(), 3u);
}

TEST(FaultPlanTest, PartitionSplitsThenHeals) {
  FaultPlan plan({.partitions = {{.start_pass = 2,
                                  .duration_passes = 3,
                                  .fraction = 0.5}},
                  .seed = 31});
  const PeerId n = 64;
  (void)plan.begin_pass(0, n);
  EXPECT_FALSE(plan.partition_active());
  (void)plan.begin_pass(1, n);
  (void)plan.begin_pass(2, n);
  ASSERT_TRUE(plan.partition_active());
  // Both sides populated, reachability symmetric and reflexive, and at
  // least one pair is cut off.
  bool cut = false;
  for (PeerId p = 0; p < n; ++p) {
    EXPECT_TRUE(plan.reachable(p, p));
    for (PeerId q = 0; q < n; ++q) {
      EXPECT_EQ(plan.reachable(p, q), plan.reachable(q, p));
      if (!plan.reachable(p, q)) cut = true;
    }
  }
  EXPECT_TRUE(cut);
  (void)plan.begin_pass(3, n);
  (void)plan.begin_pass(4, n);
  EXPECT_TRUE(plan.partition_active());
  (void)plan.begin_pass(5, n);
  EXPECT_FALSE(plan.partition_active());
  for (PeerId p = 0; p < n; ++p) {
    for (PeerId q = 0; q < n; ++q) EXPECT_TRUE(plan.reachable(p, q));
  }
  EXPECT_EQ(plan.partitions_activated(), 1u);
}

TEST(FaultPlanTest, RetryIntervalBacksOffExponentially) {
  FaultPlan plan({.ack_timeout_passes = 1, .retry_backoff_cap = 16});
  EXPECT_EQ(plan.retry_interval(0), 1u);
  EXPECT_EQ(plan.retry_interval(1), 2u);
  EXPECT_EQ(plan.retry_interval(2), 4u);
  EXPECT_EQ(plan.retry_interval(3), 8u);
  EXPECT_EQ(plan.retry_interval(4), 16u);
  EXPECT_EQ(plan.retry_interval(9), 16u);  // capped
}

// ---- legacy shim vs explicit plan ----

TEST(Faults, ShimReplaysIdenticalHistoryAsExplicitPlan) {
  // inject_faults() is a compatibility shim over FaultPlan: the same
  // probabilities and seed must produce the bit-identical run.
  const Digraph g = paper_graph(2000, 21);
  const auto p = Placement::random(2000, 40, 21);

  DistributedPagerank legacy(g, p, opts(1e-4));
  legacy.inject_faults(
      {.drop_probability = 0.1, .duplicate_probability = 0.2, .seed = 9});
  ASSERT_TRUE(legacy.run().converged);

  DistributedPagerank modern(g, p, opts(1e-4));
  FaultPlan plan(
      {.drop_probability = 0.1, .duplicate_probability = 0.2, .seed = 9});
  modern.attach_fault_plan(plan);
  ASSERT_TRUE(modern.run().converged);

  EXPECT_EQ(legacy.dropped_messages(), modern.dropped_messages());
  EXPECT_EQ(legacy.duplicated_messages(), modern.duplicated_messages());
  EXPECT_EQ(legacy.traffic().messages(), modern.traffic().messages());
  ASSERT_EQ(legacy.ranks().size(), modern.ranks().size());
  for (std::size_t i = 0; i < legacy.ranks().size(); ++i) {
    ASSERT_EQ(legacy.ranks()[i], modern.ranks()[i]) << "doc " << i;
  }
}

TEST(Faults, DoubleAttachRejected) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 2, 1);
  FaultPlan plan({.drop_probability = 0.1});
  FaultPlan other({.drop_probability = 0.2});
  DistributedPagerank engine(g, p, opts(1e-3));
  engine.attach_fault_plan(plan);
  EXPECT_THROW(engine.attach_fault_plan(other), std::logic_error);
  EXPECT_THROW(engine.inject_faults({.drop_probability = 0.1}),
               std::logic_error);
}

TEST(Faults, ReorderingIsHandledBySequenceNumbers) {
  // Unequal delivery delays let updates overtake each other; with acked
  // delivery the receiver rejects the stale ones, so the freshest
  // emission always lands last and accuracy stays close to the clean run.
  const Digraph g = paper_graph(2000, 22);
  const auto p = Placement::random(2000, 40, 22);
  const auto ref = centralized_pagerank(g, 0.85, 1e-12).ranks;

  DistributedPagerank engine(g, p, opts(1e-4));
  FaultPlan plan({.reorder_probability = 0.4,
                  .reorder_window = 4,
                  .acked_delivery = true,
                  .seed = 23});
  engine.attach_fault_plan(plan);
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  EXPECT_GT(engine.stale_rejected(), 0u);
  const auto q = summarize_quality(engine.ranks(), ref);
  EXPECT_LT(q.p50, 0.05);
}

TEST(Faults, AckedDeliveryRetransmitsDrops) {
  // With acked delivery a dropped update is retried until it lands, so
  // heavy loss costs retransmission traffic instead of accuracy.
  const Digraph g = paper_graph(2000, 24);
  const auto p = Placement::random(2000, 40, 24);
  const auto ref = centralized_pagerank(g, 0.85, 1e-12).ranks;

  DistributedPagerank engine(g, p, opts(1e-4));
  FaultPlan plan(
      {.drop_probability = 0.2, .acked_delivery = true, .seed = 25});
  engine.attach_fault_plan(plan);
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  EXPECT_GT(engine.retransmissions(), 0u);
  EXPECT_GT(engine.dropped_messages(), 0u);

  DistributedPagerank unacked(g, p, opts(1e-4));
  unacked.inject_faults({.drop_probability = 0.2, .seed = 25});
  ASSERT_TRUE(unacked.run().converged);

  const auto q_acked = summarize_quality(engine.ranks(), ref);
  const auto q_unacked = summarize_quality(unacked.ranks(), ref);
  EXPECT_LE(q_acked.avg, q_unacked.avg + 1e-9);
  EXPECT_LT(q_acked.p50, 0.02);
}

TEST(Faults, DelayedDeliveryStillConverges) {
  const Digraph g = paper_graph(1500, 26);
  const auto p = Placement::random(1500, 30, 26);
  DistributedPagerank engine(g, p, opts(1e-3));
  FaultPlan plan({.base_delay_passes = 2, .seed = 27});
  engine.attach_fault_plan(plan);
  const auto run = engine.run();
  EXPECT_TRUE(run.converged);
  // Delays stretch the schedule: more passes than the instant-delivery
  // baseline of the same setup.
  DistributedPagerank baseline(g, p, opts(1e-3));
  EXPECT_GE(run.passes, baseline.run().passes);
}

}  // namespace
}  // namespace dprank
