// Fault-injection tests: the chaotic-iteration protocol under lossy and
// duplicating delivery (extension; the paper assumes reliable transport
// plus the §3.1 outbox).

#include <gtest/gtest.h>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

PagerankOptions opts(double eps) {
  PagerankOptions o;
  o.epsilon = eps;
  return o;
}

TEST(Faults, ValidatesProbabilities) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 2, 1);
  DistributedPagerank engine(g, p, opts(1e-3));
  EXPECT_THROW(engine.inject_faults({.drop_probability = 1.0}),
               std::invalid_argument);
  EXPECT_THROW(engine.inject_faults({.drop_probability = -0.1}),
               std::invalid_argument);
  EXPECT_THROW(engine.inject_faults({.duplicate_probability = 1.5}),
               std::invalid_argument);
}

TEST(Faults, InjectAfterRunRejected) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 2, 1);
  DistributedPagerank engine(g, p, opts(1e-3));
  (void)engine.run();
  EXPECT_THROW(engine.inject_faults({.drop_probability = 0.1}),
               std::logic_error);
}

TEST(Faults, DuplicatesAreHarmless) {
  // Newest-value-wins contribution cells make duplicate delivery purely
  // a traffic cost: the fixed point is identical.
  const Digraph g = paper_graph(2000, 12);
  const auto p = Placement::random(2000, 40, 12);

  DistributedPagerank clean(g, p, opts(1e-5));
  ASSERT_TRUE(clean.run().converged);

  DistributedPagerank dup(g, p, opts(1e-5));
  dup.inject_faults({.duplicate_probability = 0.3, .seed = 5});
  ASSERT_TRUE(dup.run().converged);

  EXPECT_GT(dup.duplicated_messages(), 0u);
  EXPECT_GT(dup.traffic().messages(), clean.traffic().messages());
  EXPECT_LT(summarize_quality(dup.ranks(), clean.ranks()).max, 1e-12);
}

TEST(Faults, ModerateLossDegradesGracefully) {
  // A dropped update leaves one stale contribution; unless it was the
  // link's final update, a later one repairs it. Accuracy therefore
  // degrades smoothly with the drop rate instead of collapsing.
  const Digraph g = paper_graph(3000, 13);
  const auto p = Placement::random(3000, 50, 13);
  const auto ref = centralized_pagerank(g, 0.85, 1e-12).ranks;

  double prev_err = 0.0;
  for (const double drop : {0.0, 0.05, 0.20}) {
    DistributedPagerank engine(g, p, opts(1e-4));
    if (drop > 0) {
      engine.inject_faults({.drop_probability = drop, .seed = 7});
    }
    ASSERT_TRUE(engine.run().converged) << "drop=" << drop;
    const auto q = summarize_quality(engine.ranks(), ref);
    EXPECT_GE(q.avg, prev_err * 0.5) << "drop=" << drop;
    prev_err = q.avg;
    // Even at 20% loss the typical document stays within a few percent.
    if (drop == 0.20) {
      EXPECT_LT(q.p50, 0.05);
      EXPECT_GT(engine.dropped_messages(), 0u);
    }
  }
}

TEST(Faults, LossNeverPreventsTermination) {
  const Digraph g = paper_graph(1500, 14);
  const auto p = Placement::random(1500, 30, 14);
  for (const double drop : {0.5, 0.9}) {
    DistributedPagerank engine(g, p, opts(1e-3));
    engine.inject_faults({.drop_probability = drop, .seed = 11});
    const auto run = engine.run();
    EXPECT_TRUE(run.converged) << "drop=" << drop;
    // Heavy loss usually *shortens* the run (updates stop propagating).
    EXPECT_LT(run.passes, 10'000u);
  }
}

TEST(Faults, OutboxPathStaysReliableUnderChurn) {
  // Faults model the direct path; the §3.1 store-and-resend path is
  // reliable by construction, so churn + loss still converges and
  // deferred messages are all eventually delivered.
  const Digraph g = paper_graph(1500, 15);
  const auto p = Placement::random(1500, 30, 15);
  ChurnSchedule churn(30, 0.5, 15);
  DistributedPagerank engine(g, p, opts(1e-3));
  engine.inject_faults({.drop_probability = 0.1, .seed = 13});
  const auto run = engine.run(&churn);
  EXPECT_TRUE(run.converged);
  EXPECT_GT(engine.outbox_peak(), 0u);
}

}  // namespace
}  // namespace dprank
