#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "graph/generator.hpp"
#include "graph/mutable_digraph.hpp"
#include "obs/metrics.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/quality.hpp"
#include "stream/ingest_coordinator.hpp"
#include "stream/live_rank_service.hpp"
#include "stream/stream_source.hpp"

namespace dprank {

// Friend of the validated classes (one definition per test binary, same
// pattern as test_validators.cpp): plants exactly one inconsistency so
// the negative tests can prove the contract sweep actually looks.
struct TestCorruptor {
  static void shrink_rank_vector(IngestCoordinator& c) {
    // Rank array out of step with the live graph — the coordinator's
    // own parallel-array invariant.
    c.ranks_.pop_back();
  }
  static void corrupt_adjacency_mirror(IngestCoordinator& c) {
    // An out-entry with no in-mirror, planted in the coordinator's
    // graph: caught one layer down, by MutableDigraph::validate().
    c.graph_.out_[0].push_back(1);
  }
};

namespace {

using contracts::ContractViolation;

// EXPECT_THROW cannot inspect the exception; this asserts both the type
// and that the violation names the expected subsystem.
template <typename Fn>
void expect_violation(const char* subsystem, Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    FAIL() << "expected ContractViolation from subsystem " << subsystem;
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.subsystem(), subsystem) << v.what();
    EXPECT_FALSE(v.expression().empty());
  }
}

#define SKIP_WITHOUT_CONTRACTS()                                          \
  if (!contracts::enabled()) {                                            \
    GTEST_SKIP() << "contracts compiled out (DPRANK_CHECK_INVARIANTS "    \
                    "off)";                                               \
  }

StreamSourceConfig source_config(NodeId initial_docs, std::uint64_t seed) {
  StreamSourceConfig sc;
  sc.initial_docs = initial_docs;
  sc.max_events = 1'000;
  sc.seed = seed;
  sc.min_live_docs = 8;
  return sc;
}

IngestConfig ingest_config(std::uint32_t batch_size) {
  IngestConfig ic;
  ic.batch_size = batch_size;
  ic.seed = 99;
  // Cascade work grows ~1/epsilon (Table 4); 1e-6 keeps the suite fast
  // while leaving truncation far below the tolerances asserted here.
  ic.options.epsilon = 1e-6;
  ic.options.damping = 0.85;
  ic.options.threads = 1;
  // Small reconvergence campaigns keep the tests fast.
  ic.reconverge.initial_peers = 8;
  ic.reconverge.events = 6;
  ic.reconverge.min_live = 4;
  return ic;
}

/// Fresh coordinator over a converged paper graph.
IngestCoordinator make_coordinator(NodeId docs, std::uint64_t graph_seed,
                                   const IngestConfig& ic) {
  const Digraph base = paper_graph(docs, graph_seed);
  std::vector<double> ranks =
      centralized_pagerank(base, ic.options.damping, 1e-13).ranks;
  return IngestCoordinator(MutableDigraph(base), std::move(ranks), ic);
}

TEST(StreamSource, DeterministicDoubleRun) {
  const StreamSourceConfig sc = source_config(100, 7);
  StreamSource a(sc);
  StreamSource b(sc);
  const auto ea = a.take(200);
  const auto eb = b.take(200);
  ASSERT_EQ(ea.size(), eb.size());
  for (std::size_t i = 0; i < ea.size(); ++i) {
    ASSERT_EQ(ea[i], eb[i]) << "event " << i;
  }
  // A different seed must produce a different stream.
  StreamSourceConfig other = sc;
  other.seed = 8;
  StreamSource c(other);
  EXPECT_NE(c.take(200), ea);
}

TEST(StreamSource, InsertsPredictSequentialIds) {
  const StreamSourceConfig sc = source_config(50, 3);
  StreamSource src(sc);
  NodeId expected = 50;
  for (const StreamEvent& ev : src.take(300)) {
    if (ev.kind == StreamEvent::Kind::kInsert) {
      EXPECT_EQ(ev.node, expected++);
      EXPECT_FALSE(ev.out_links.empty());
      EXPECT_LE(ev.out_links.size(), sc.max_out_links);
    }
    EXPECT_LT(ev.seq, 300u);
  }
  EXPECT_EQ(src.next_id(), expected);
  EXPECT_GE(src.live_docs(), sc.min_live_docs);
}

TEST(StreamSource, TimestampsFollowTheConfiguredRate) {
  StreamSourceConfig sc = source_config(50, 4);
  sc.events_per_sec = 500.0;  // 2000 us apart
  StreamSource src(sc);
  const auto events = src.take(10);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].timestamp_us, i * 2000);
  }
}

TEST(StreamSource, ValidatesConfig) {
  StreamSourceConfig sc = source_config(100, 1);
  sc.insert_weight = sc.delete_weight = 0;
  sc.add_edge_weight = sc.remove_edge_weight = 0;
  EXPECT_THROW(StreamSource{sc}, std::invalid_argument);
  StreamSourceConfig tiny = source_config(1, 1);
  EXPECT_THROW(StreamSource{tiny}, std::invalid_argument);
}

TEST(ApplyStructural, NoOpsAndErrors) {
  MutableDigraph g(NodeId{4});
  g.add_edge(0, 1);
  std::vector<std::uint8_t> dead(4, 0);

  StreamEvent dup;
  dup.kind = StreamEvent::Kind::kAddEdge;
  dup.node = 0;
  dup.target = 1;
  EXPECT_FALSE(apply_structural_event(g, dead, dup));  // duplicate edge

  StreamEvent naked;
  naked.kind = StreamEvent::Kind::kRemoveEdge;
  naked.node = 2;  // no out-links
  EXPECT_FALSE(apply_structural_event(g, dead, naked));

  StreamEvent del;
  del.kind = StreamEvent::Kind::kDelete;
  del.node = 1;
  EXPECT_TRUE(apply_structural_event(g, dead, del));
  EXPECT_FALSE(apply_structural_event(g, dead, del));  // tombstoned

  StreamEvent bad_insert;
  bad_insert.kind = StreamEvent::Kind::kInsert;
  bad_insert.node = 99;  // next id is 4
  EXPECT_THROW(apply_structural_event(g, dead, bad_insert),
               std::invalid_argument);
}

TEST(IngestCoordinator, StructureIdenticalAcrossBatchSizes) {
  const StreamSourceConfig sc = source_config(150, 21);
  NodeId ref_nodes = 0;
  EdgeId ref_edges = 0;
  for (const std::uint32_t batch : {1u, 7u, 32u}) {
    StreamSource src(sc);
    IngestCoordinator coord = make_coordinator(150, 21, ingest_config(batch));
    for (const StreamEvent& ev : src.take(150)) coord.offer(ev);
    coord.flush();
    coord.graph().validate();
    // Pin the structural end state against the batch-1 reference run.
    if (batch == 1) {
      ref_nodes = coord.graph().num_nodes();
      ref_edges = coord.graph().num_edges();
      EXPECT_GT(ref_nodes, 150u);  // inserts happened
    } else {
      EXPECT_EQ(coord.graph().num_nodes(), ref_nodes);
      EXPECT_EQ(coord.graph().num_edges(), ref_edges);
    }
  }
}

TEST(IngestCoordinator, CoalescedBatchMatchesPerEventIngest) {
  // The S3 equivalence contract. The two modes are not bit-identical:
  // per-event diffs see ranks already adjusted by earlier cascades in
  // the window, batched diffs all use the pre-batch snapshot — a
  // second-order difference of order d * delta per interaction, on top
  // of the epsilon truncation. Both must stay within a small relative
  // envelope of each other.
  const StreamSourceConfig sc = source_config(200, 31);
  StreamSource src1(sc);
  StreamSource srcN(sc);
  IngestCoordinator per_event =
      make_coordinator(200, 31, ingest_config(1));
  IngestCoordinator batched = make_coordinator(200, 31, ingest_config(8));
  for (const StreamEvent& ev : src1.take(200)) per_event.offer(ev);
  for (const StreamEvent& ev : srcN.take(200)) batched.offer(ev);
  per_event.flush();
  batched.flush();

  ASSERT_EQ(per_event.ranks().size(), batched.ranks().size());
  // The interaction term scales with the window (measured for this
  // seed: max 1e-3 at batch 2, 2.3e-3 at batch 8, 3e-2 at batch 24);
  // the envelope is ~2x the batch-8 drift. Both modes independently
  // satisfy the much looser fidelity bound against the exact solution
  // (TracksTheExactSolutionOfTheEvolvedGraph).
  const QualityReport q = summarize_quality(batched.ranks(), per_event.ranks());
  EXPECT_LT(q.max, 5e-3);
  // The orderings must agree almost everywhere (what search serves).
  EXPECT_GE(top_k_overlap(batched.ranks(), per_event.ranks(), 20), 0.9);
}

TEST(IngestCoordinator, TracksTheExactSolutionOfTheEvolvedGraph) {
  const StreamSourceConfig sc = source_config(200, 5);
  StreamSource src(sc);
  IngestConfig ic = ingest_config(16);
  IngestCoordinator coord = make_coordinator(200, 5, ic);
  for (const StreamEvent& ev : src.take(160)) coord.offer(ev);
  coord.flush();

  auto exact =
      centralized_pagerank(coord.graph().freeze(), ic.options.damping, 1e-13)
          .ranks;
  std::uint64_t live = 0;
  double max_err = 0.0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    if (coord.is_deleted(static_cast<NodeId>(v))) {
      // A full delete leaves no dangling rank, ever.
      ASSERT_DOUBLE_EQ(coord.ranks()[v], 0.0) << "tombstone " << v;
      ASSERT_TRUE(coord.graph().is_isolated(static_cast<NodeId>(v)));
      continue;
    }
    ++live;
    const double err = std::abs(coord.ranks()[v] - exact[v]) /
                       std::max(1.0, std::abs(exact[v]));
    max_err = std::max(max_err, err);
  }
  EXPECT_GT(live, 0u);
  // Incremental maintenance accumulates truncation + the paper's
  // unmodeled second-order terms; it must stay a faithful approximation.
  // (Measured ~0.05 for this seed; batched ingest gets MORE accurate as
  // the window grows — the emission diff over the final structure acts
  // like a partial Jacobi sweep — so this bounds the worst mode.)
  EXPECT_LT(max_err, 0.08);
}

TEST(IngestCoordinator, ReconvergenceAdoptsIdenticalRanksAcrossBatchSizes) {
  const StreamSourceConfig sc = source_config(150, 77);
  IngestConfig ic1 = ingest_config(1);
  IngestConfig icN = ingest_config(16);
  ic1.reconverge_every_events = 60;
  icN.reconverge_every_events = 60;
  StreamSource src1(sc);
  StreamSource srcN(sc);
  IngestCoordinator a = make_coordinator(150, 77, ic1);
  IngestCoordinator b = make_coordinator(150, 77, icN);
  for (const StreamEvent& ev : src1.take(60)) a.offer(ev);
  for (const StreamEvent& ev : srcN.take(60)) b.offer(ev);
  // The 60th offer hit the reconvergence mark in both: identical graphs,
  // identical campaign seeds, identical adopted ranks — bit for bit.
  ASSERT_EQ(a.reconverge_cycles(), 1u);
  ASSERT_EQ(b.reconverge_cycles(), 1u);
  EXPECT_EQ(a.digest(), b.digest());
  ASSERT_EQ(a.mass_ratios().size(), 1u);
  EXPECT_NEAR(a.mass_ratios()[0], 1.0, 1e-9);
  EXPECT_TRUE(a.last_batch_touched().empty());  // full-refresh signal
}

TEST(IngestCoordinator, DeterministicDoubleRunWithReconvergence) {
  const StreamSourceConfig sc = source_config(120, 13);
  IngestConfig ic = ingest_config(8);
  ic.reconverge_every_events = 50;
  std::uint64_t first = 0;
  for (int run = 0; run < 2; ++run) {
    StreamSource src(sc);
    IngestCoordinator coord = make_coordinator(120, 13, ic);
    for (const StreamEvent& ev : src.take(110)) coord.offer(ev);
    coord.flush();
    if (run == 0) {
      first = coord.digest();
    } else {
      EXPECT_EQ(coord.digest(), first);
    }
  }
}

TEST(LiveRankService, TopKMatchesNaiveSortAndCaches) {
  const StreamSourceConfig sc = source_config(150, 9);
  StreamSource src(sc);
  IngestCoordinator coord = make_coordinator(150, 9, ingest_config(10));
  LiveRankService service(coord);
  for (const StreamEvent& ev : src.take(100)) coord.offer(ev);
  coord.flush();

  const auto top = service.top_k(10);
  ASSERT_EQ(top.size(), 10u);
  // Against a naive full sort of the live documents.
  std::vector<std::pair<NodeId, double>> all;
  for (NodeId v = 0; v < coord.ranks().size(); ++v) {
    if (!coord.is_deleted(v)) all.emplace_back(v, coord.ranks()[v]);
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_EQ(top[i].first, all[i].first) << "slot " << i;
    EXPECT_DOUBLE_EQ(top[i].second, all[i].second);
  }
  EXPECT_GE(top.front().second, top.back().second);  // descending

  const auto hits_before = service.topk_cache_hits();
  (void)service.top_k(10);  // same version: served from cache
  EXPECT_EQ(service.topk_cache_hits(), hits_before + 1);
}

TEST(LiveRankService, RankOfTombstoneAndUnknownIsZero) {
  IngestCoordinator coord = make_coordinator(100, 2, ingest_config(4));
  LiveRankService service(coord);
  StreamEvent del;
  del.kind = StreamEvent::Kind::kDelete;
  del.node = 17;
  coord.offer(del);
  coord.flush();
  EXPECT_DOUBLE_EQ(service.rank_of(17), 0.0);
  EXPECT_DOUBLE_EQ(service.rank_of(10'000), 0.0);
  EXPECT_GT(service.rank_of(3), 0.0);
  EXPECT_EQ(service.queries(), 3u);
}

TEST(LiveRankService, StalenessShrinksWhenPendingEventsAreApplied) {
  const StreamSourceConfig sc = source_config(200, 17);
  StreamSource src(sc);
  // Batch larger than the offered count: everything stays pending.
  IngestCoordinator coord = make_coordinator(200, 17, ingest_config(64));
  LiveRankService service(coord);
  for (const StreamEvent& ev : src.take(40)) coord.offer(ev);
  ASSERT_EQ(coord.pending().size(), 40u);

  const StalenessReport lagging = service.measure_staleness();
  EXPECT_EQ(lagging.pending_events, 40u);
  EXPECT_GT(lagging.mean_abs, 0.0);  // pending inserts alone guarantee it

  coord.flush();
  const StalenessReport applied = service.measure_staleness();
  EXPECT_EQ(applied.pending_events, 0u);
  // Applying the pending window must strictly reduce staleness: the
  // oracle is identical, and the served view has caught up to it.
  EXPECT_LT(applied.mean_abs, lagging.mean_abs);
  EXPECT_LT(applied.mean_abs, 0.05);
}

// ---------------------------------------------------------------------------
// Contract-sweep regression (the dprank_analyze contract-coverage
// finding): IngestCoordinator::validate() now walks MutableDigraph's
// invariants from src during ingest. Positive: the sweep runs and is
// observation-only (bit-identical digests with it on or off). Negative:
// a planted inconsistency surfaces as a ContractViolation naming the
// owning subsystem.
// ---------------------------------------------------------------------------

TEST(IngestCoordinator, ContractSweepIsObservationOnly) {
  SKIP_WITHOUT_CONTRACTS();
  const StreamSourceConfig sc = source_config(120, 13);
  IngestConfig ic = ingest_config(8);
  ic.reconverge_every_events = 50;

  auto run = [&](std::uint32_t sweep_every, obs::MetricsRegistry* metrics) {
    StreamSource src(sc);
    IngestConfig cfg = ic;
    cfg.sweep_every_batches = sweep_every;
    const Digraph base = paper_graph(120, 13);
    std::vector<double> ranks =
        centralized_pagerank(base, cfg.options.damping, 1e-13).ranks;
    IngestCoordinator coord(MutableDigraph(base), std::move(ranks), cfg,
                            metrics);
    for (const StreamEvent& ev : src.take(110)) coord.offer(ev);
    coord.flush();
    return coord.digest();
  };

  obs::MetricsRegistry swept;
  obs::MetricsRegistry lazy;
  const std::uint64_t digest_on = run(1, &swept);    // sweep every batch
  const std::uint64_t digest_off = run(0, &lazy);    // reconvergence only
  // The sweep must never perturb the maintained ranks.
  EXPECT_EQ(digest_on, digest_off);
  const std::uint64_t sweeps_on =
      swept.counter("stream.contract_sweeps").value();
  const std::uint64_t sweeps_off =
      lazy.counter("stream.contract_sweeps").value();
  // Every applied batch swept, plus the reconvergence sweeps...
  EXPECT_GT(sweeps_on, sweeps_off);
  EXPECT_GT(sweeps_on, 10u);
  // ...while sweep_every_batches = 0 keeps only the reconvergence ones.
  EXPECT_EQ(sweeps_off, lazy.counter("stream.reconverges").value());
}

TEST(ValidatorNegative, IngestSweepCatchesRankArrayDrift) {
  SKIP_WITHOUT_CONTRACTS();
  const StreamSourceConfig sc = source_config(100, 7);
  StreamSource src(sc);
  IngestCoordinator coord = make_coordinator(100, 7, ingest_config(8));
  for (const StreamEvent& ev : src.take(60)) coord.offer(ev);
  coord.flush();
  coord.validate();  // sanity: clean before the corruption
  TestCorruptor::shrink_rank_vector(coord);
  expect_violation("stream", [&] { coord.validate(); });
}

TEST(ValidatorNegative, IngestSweepCatchesGraphCorruption) {
  SKIP_WITHOUT_CONTRACTS();
  const StreamSourceConfig sc = source_config(100, 7);
  StreamSource src(sc);
  IngestCoordinator coord = make_coordinator(100, 7, ingest_config(8));
  for (const StreamEvent& ev : src.take(60)) coord.offer(ev);
  coord.flush();
  TestCorruptor::corrupt_adjacency_mirror(coord);
  // The coordinator's sweep cascades into the graph's own invariants.
  expect_violation("graph", [&] { coord.validate(); });
}

}  // namespace
}  // namespace dprank
