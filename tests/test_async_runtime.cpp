#include "pagerank/async_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

PagerankOptions opts(double eps) {
  PagerankOptions o;
  o.epsilon = eps;
  return o;
}

TEST(AsyncRuntime, ValidatesPlacement) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(5, 2, 1);
  EXPECT_THROW(AsyncPagerankRuntime(g, p, opts(1e-3)), std::invalid_argument);
}

TEST(AsyncRuntime, SinglePeerMatchesCentralized) {
  const Digraph g = paper_graph(500, 3);
  const auto p = Placement::random(500, 1, 3);
  AsyncPagerankRuntime rt(g, p, opts(1e-9));
  const auto result = rt.run();
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.cross_peer_messages, 0u);  // nothing leaves the peer
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  EXPECT_LT(summarize_quality(result.ranks, ref).max, 1e-6);
}

TEST(AsyncRuntime, MultiPeerConvergesToReference) {
  // The chaotic iteration with real threads must land on the same fixed
  // point as the synchronous solver (Chazan & Miranker).
  const Digraph g = paper_graph(2000, 4);
  const auto p = Placement::random(2000, 8, 4);
  AsyncPagerankRuntime rt(g, p, opts(1e-8));
  const auto result = rt.run();
  ASSERT_TRUE(result.converged);
  EXPECT_GT(result.cross_peer_messages, 0u);
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  EXPECT_LT(summarize_quality(result.ranks, ref).max, 1e-4);
}

TEST(AsyncRuntime, AgreesWithPassBasedEngine) {
  // Two implementations of the same protocol: results must agree within
  // the epsilon-scale tolerance even though message orderings differ.
  const Digraph g = paper_graph(1500, 5);
  const auto p = Placement::random(1500, 6, 5);

  AsyncPagerankRuntime rt(g, p, opts(1e-7));
  const auto async_result = rt.run();
  ASSERT_TRUE(async_result.converged);

  DistributedPagerank sync_engine(g, p, opts(1e-7));
  ASSERT_TRUE(sync_engine.run().converged);

  const auto q = summarize_quality(async_result.ranks, sync_engine.ranks());
  EXPECT_LT(q.max, 1e-3);
}

TEST(AsyncRuntime, RepeatedRunsConvergeToSameFixedPoint) {
  // Thread interleavings vary between runs; the fixed point may not.
  const Digraph g = paper_graph(800, 6);
  const auto p = Placement::random(800, 4, 6);
  AsyncPagerankRuntime a(g, p, opts(1e-8));
  AsyncPagerankRuntime b(g, p, opts(1e-8));
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_TRUE(ra.converged);
  ASSERT_TRUE(rb.converged);
  EXPECT_LT(summarize_quality(ra.ranks, rb.ranks).max, 1e-4);
}

TEST(AsyncRuntime, EveryDocumentRecomputesAtLeastOnce) {
  const Digraph g = paper_graph(600, 7);
  const auto p = Placement::random(600, 3, 7);
  AsyncPagerankRuntime rt(g, p, opts(1e-4));
  const auto result = rt.run();
  EXPECT_GE(result.recomputes, 600u);  // the startup pass alone
}

TEST(AsyncRuntime, MessageCapAborts) {
  const Digraph g = paper_graph(2000, 8);
  const auto p = Placement::random(2000, 8, 8);
  AsyncPagerankRuntime rt(g, p, opts(1e-12));
  const auto result = rt.run(/*message_cap=*/100);
  EXPECT_FALSE(result.converged);
}

TEST(AsyncRuntime, EmptyGraphTerminates) {
  const Digraph g = Digraph::from_edges(10, {});
  const auto p = Placement::random(10, 4, 9);
  AsyncPagerankRuntime rt(g, p, opts(1e-3));
  const auto result = rt.run();
  EXPECT_TRUE(result.converged);
  for (const double r : result.ranks) EXPECT_NEAR(r, 0.15, 1e-12);
}

TEST(AsyncRuntime, ChurnedRunStillReachesFixedPoint) {
  // Pause/resume injection: peers freeze mid-computation while their
  // mailboxes fill; the credit-counted termination must still detect
  // true quiescence and the fixed point must be unchanged.
  const Digraph g = paper_graph(1500, 11);
  const auto p = Placement::random(1500, 8, 11);
  AsyncPagerankRuntime rt(g, p, opts(1e-8));
  AsyncPagerankRuntime::ChurnParams churn;
  churn.cycles = 20;
  churn.pause_fraction = 0.5;
  churn.pause_microseconds = 300;
  const auto result = rt.run_with_churn(churn);
  ASSERT_TRUE(result.converged);
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  EXPECT_LT(summarize_quality(result.ranks, ref).max, 1e-4);
}

TEST(AsyncRuntime, ChurnWithSinglePeerIsNoOp) {
  const Digraph g = paper_graph(400, 12);
  const auto p = Placement::random(400, 1, 12);
  AsyncPagerankRuntime rt(g, p, opts(1e-8));
  const auto result = rt.run_with_churn({.cycles = 5});
  EXPECT_TRUE(result.converged);
}

TEST(AsyncRuntime, CappedRunSeparatesDiscardsFromDelivered) {
  // A tripped message cap discards whole drained batches. Those discards
  // must be tallied apart from delivered traffic, not silently folded
  // into it (the skew this regression guards: capped runs used to report
  // every sent message as delivered).
  const Digraph g = paper_graph(2000, 8);
  const auto p = Placement::random(2000, 8, 8);
  AsyncPagerankRuntime rt(g, p, opts(1e-12));
  obs::MetricsRegistry reg;
  rt.bind_metrics(reg);
  const auto result = rt.run(/*message_cap=*/100);
  ASSERT_FALSE(result.converged);
  EXPECT_GT(result.capped_discards, 0u);
  EXPECT_LE(result.capped_discards, result.cross_peer_messages);
  EXPECT_EQ(result.delivered_messages(),
            result.cross_peer_messages - result.capped_discards);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("async.capped_discards"),
            result.capped_discards);
  EXPECT_EQ(snap.counters.at("async.cross_messages"),
            result.cross_peer_messages);
}

TEST(AsyncRuntime, UncappedRunDiscardsNothing) {
  const Digraph g = paper_graph(800, 6);
  const auto p = Placement::random(800, 4, 6);
  AsyncPagerankRuntime rt(g, p, opts(1e-8));
  const auto result = rt.run();
  ASSERT_TRUE(result.converged);
  EXPECT_EQ(result.capped_discards, 0u);
  EXPECT_EQ(result.delivered_messages(), result.cross_peer_messages);
}

TEST(AsyncRuntime, PausedPeerHoldsBlockedBatches) {
  // Regression for the churn-gate race: a pause landing while a worker
  // was blocked inside its mailbox wait used to be ignored — the worker
  // had already passed the paused[] check and processed the batch while
  // nominally offline. The fixed gate re-checks after the drain and
  // holds the batch (credits retained) until resume. The test seam
  // injects the pause deterministically inside that blind window, so the
  // hold path fires without racing real controller timing against the
  // drain (which made this assertion flaky on loaded runners), and the
  // run must still terminate at the true fixed point.
  const Digraph g = paper_graph(1200, 13);
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  std::uint64_t holds = 0;
  for (int attempt = 0; attempt < 3 && holds == 0; ++attempt) {
    const auto p = Placement::random(1200, 6, 13);
    AsyncPagerankRuntime rt(g, p, opts(1e-8));
    // Pause the draining peer for the first few cross-peer batches; an
    // injected pause only misses the gate if a same-instant cycle resume
    // clears it first, so several injections make a miss vanishingly
    // rare (and the outer loop retries even that).
    std::atomic<int> injections{3};
    rt.set_test_pause_after_drain(
        [&](PeerId) { return injections.fetch_sub(1) > 0; });
    AsyncPagerankRuntime::ChurnParams churn;
    churn.cycles = 25;
    churn.pause_fraction = 0.5;
    churn.pause_microseconds = 2000;
    churn.seed = 1000 + static_cast<std::uint64_t>(attempt);
    const auto result = rt.run_with_churn(churn);
    ASSERT_TRUE(result.converged) << "attempt " << attempt;
    EXPECT_LT(summarize_quality(result.ranks, ref).max, 1e-4)
        << "attempt " << attempt;
    holds += result.paused_holds;
  }
  EXPECT_GT(holds, 0u)
      << "post-drain churn gate never engaged with injected pauses";
}

TEST(AsyncRuntime, ManyPeersSmallGraph) {
  // More peers than documents per peer; exercises empty-peer startup.
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 12, 10);
  AsyncPagerankRuntime rt(g, p, opts(1e-9));
  const auto result = rt.run();
  ASSERT_TRUE(result.converged);
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  EXPECT_LT(summarize_quality(result.ranks, ref).max, 1e-6);
}

}  // namespace
}  // namespace dprank
