#include "search/incremental_search.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "search/query_gen.hpp"

namespace dprank {
namespace {

CorpusParams corpus_params() {
  CorpusParams p;
  p.num_docs = 3000;
  p.vocabulary = 400;
  p.mean_terms = 50;
  p.min_terms = 5;
  p.max_terms = 200;
  p.seed = 77;
  return p;
}

class SearchTest : public ::testing::Test {
 protected:
  SearchTest()
      : corpus_(Corpus::synthesize(corpus_params())),
        ring_(50),
        index_(corpus_, ring_) {
    Rng rng(123);
    std::vector<double> ranks(corpus_.num_docs());
    for (auto& r : ranks) r = rng.uniform(0.1, 10.0);
    ranks_ = ranks;
    const std::vector<PeerId> owner(corpus_.num_docs(), 0);
    index_.publish_ranks(ranks, owner);
  }

  /// Ground-truth boolean AND by brute force over the corpus.
  std::set<NodeId> brute_force(const std::vector<TermId>& terms) const {
    std::set<NodeId> out;
    for (NodeId d = 0; d < corpus_.num_docs(); ++d) {
      const auto& doc_terms = corpus_.terms_of(d);
      bool all = true;
      for (const TermId t : terms) {
        if (!std::binary_search(doc_terms.begin(), doc_terms.end(), t)) {
          all = false;
          break;
        }
      }
      if (all) out.insert(d);
    }
    return out;
  }

  Corpus corpus_;
  ChordRing ring_;
  DistributedIndex index_;
  std::vector<double> ranks_;
};

TEST_F(SearchTest, BaselineReturnsExactIntersection) {
  const auto queries = generate_queries(
      corpus_, {.term_pool = 50, .num_queries = 10, .terms_per_query = 2});
  SearchEngine engine(index_);
  for (const auto& q : queries) {
    const auto outcome = engine.run_query(q, kForwardEverything);
    const auto expected = brute_force(q);
    const std::set<NodeId> got(outcome.hits.begin(), outcome.hits.end());
    EXPECT_EQ(got, expected);
  }
}

TEST_F(SearchTest, BaselineTrafficIsPostingsPlusResult) {
  SearchEngine engine(index_);
  const std::vector<TermId> q{0, 1};
  const auto outcome = engine.run_query(q, kForwardEverything);
  const auto h1 = index_.postings(0).size();
  EXPECT_EQ(outcome.ids_transferred, h1 + outcome.hits.size());
}

TEST_F(SearchTest, SingleTermQueryIsJustTheReturn) {
  SearchEngine engine(index_);
  const auto outcome = engine.run_query({3}, kForwardEverything);
  EXPECT_EQ(outcome.hits.size(), index_.postings(3).size());
  EXPECT_EQ(outcome.ids_transferred, outcome.hits.size());
}

TEST_F(SearchTest, HitsAreSortedByRank) {
  SearchEngine engine(index_);
  const auto outcome = engine.run_query({0, 1}, kForwardEverything);
  for (std::size_t i = 1; i < outcome.hits.size(); ++i) {
    ASSERT_GE(ranks_[outcome.hits[i - 1]], ranks_[outcome.hits[i]]);
  }
}

TEST_F(SearchTest, IncrementalHitsAreSubsetOfBaseline) {
  SearchEngine engine(index_);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  const std::vector<TermId> q{0, 2, 4};
  const auto inc = engine.run_query(q, top10);
  const auto base = engine.run_query(q, kForwardEverything);
  const std::set<NodeId> base_set(base.hits.begin(), base.hits.end());
  for (const NodeId d : inc.hits) {
    ASSERT_TRUE(base_set.contains(d));
  }
  EXPECT_LE(inc.hits.size(), base.hits.size());
}

TEST_F(SearchTest, IncrementalKeepsTheTopRankedBaselineHit) {
  // The whole point: the most important documents survive filtering.
  SearchEngine engine(index_);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  const std::vector<TermId> q{0, 1};
  const auto inc = engine.run_query(q, top10);
  const auto base = engine.run_query(q, kForwardEverything);
  if (!base.hits.empty() && !inc.hits.empty()) {
    EXPECT_EQ(inc.hits.front(), base.hits.front());
  }
}

TEST_F(SearchTest, IncrementalReducesTraffic) {
  SearchEngine engine(index_);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  std::uint64_t base_total = 0;
  std::uint64_t inc_total = 0;
  const auto queries = generate_queries(
      corpus_, {.term_pool = 40, .num_queries = 20, .terms_per_query = 2});
  for (const auto& q : queries) {
    base_total += engine.run_query(q, kForwardEverything).ids_transferred;
    inc_total += engine.run_query(q, top10).ids_transferred;
  }
  EXPECT_LT(inc_total * 3, base_total);  // at least ~3x better here
}

TEST_F(SearchTest, MinForwardRuleForwardsEverything) {
  SearchEngine engine(index_);
  SearchPolicy tiny;
  tiny.forward_fraction = 0.10;
  tiny.min_forward = 1'000'000;  // always below threshold -> forward all
  const std::vector<TermId> q{0, 1};
  const auto all = engine.run_query(q, kForwardEverything);
  const auto escaped = engine.run_query(q, tiny);
  EXPECT_EQ(escaped.hits.size(), all.hits.size());
  EXPECT_EQ(escaped.ids_transferred, all.ids_transferred);
}

TEST_F(SearchTest, ForwardedPerHopRespectsFraction) {
  SearchEngine engine(index_);
  SearchPolicy top20;
  top20.forward_fraction = 0.20;
  top20.min_forward = 0;
  const std::vector<TermId> q{0, 1, 2};
  const auto outcome = engine.run_query(q, top20);
  ASSERT_EQ(outcome.forwarded_per_hop.size(), 2u);
  const auto h1 = index_.postings(0).size();
  EXPECT_LE(outcome.forwarded_per_hop[0],
            static_cast<std::uint32_t>(std::ceil(0.20 * h1)) + 1);
}

TEST_F(SearchTest, BloomPrefilterIsExact) {
  // The coordinator removes false positives, so bloom mode returns the
  // exact same hit set as the baseline.
  SearchEngine engine(index_);
  SearchPolicy bloom = kForwardEverything;
  bloom.bloom_prefilter = true;
  for (const auto& q : generate_queries(
           corpus_,
           {.term_pool = 30, .num_queries = 10, .terms_per_query = 2})) {
    const auto plain = engine.run_query(q, kForwardEverything);
    const auto filtered = engine.run_query(q, bloom);
    const std::set<NodeId> a(plain.hits.begin(), plain.hits.end());
    const std::set<NodeId> b(filtered.hits.begin(), filtered.hits.end());
    EXPECT_EQ(a, b);
  }
}

TEST_F(SearchTest, BloomReducesBytesOnLargeLists) {
  SearchEngine engine(index_);
  SearchPolicy bloom = kForwardEverything;
  bloom.bloom_prefilter = true;
  const std::vector<TermId> q{0, 1};  // biggest posting lists
  const auto plain = engine.run_query(q, kForwardEverything);
  const auto filtered = engine.run_query(q, bloom);
  EXPECT_LT(filtered.wire_bytes, plain.wire_bytes);
}

TEST_F(SearchTest, EmptyQueryRejected) {
  SearchEngine engine(index_);
  EXPECT_THROW(engine.run_query({}, kForwardEverything),
               std::invalid_argument);
}

TEST_F(SearchTest, DisjointTermsGiveEmptyResult) {
  // Construct a query from two rare tail terms that share no documents
  // (if the seed happens to share them, the assertion is vacuous).
  SearchEngine engine(index_);
  const TermId a = corpus_.vocabulary() - 1;
  const TermId b = corpus_.vocabulary() - 2;
  const auto outcome = engine.run_query({a, b}, kForwardEverything);
  const auto expected = brute_force({a, b});
  EXPECT_EQ(outcome.hits.size(), expected.size());
}

TEST_F(SearchTest, SessionFetchesAreDisjointAndOrdered) {
  SearchEngine engine(index_);
  SearchPolicy top5;
  top5.forward_fraction = 0.05;
  top5.min_forward = 0;
  SearchSession session(engine, {0, 1}, top5);
  std::set<NodeId> all;
  while (!session.exhausted()) {
    const auto batch = session.fetch_more();
    for (const NodeId d : batch) {
      ASSERT_TRUE(all.insert(d).second) << "duplicate hit " << d;
    }
  }
  EXPECT_TRUE(session.fetch_more().empty());  // stays exhausted
  // Exhaustive session must end up with the full baseline result set.
  const auto base = engine.run_query({0, 1}, kForwardEverything);
  EXPECT_EQ(all.size(), base.hits.size());
}

TEST_F(SearchTest, SessionFirstBatchIsTopRanked) {
  SearchEngine engine(index_);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  SearchSession session(engine, {0, 1}, top10);
  const auto first = session.fetch_more();
  const auto base = engine.run_query({0, 1}, kForwardEverything);
  ASSERT_FALSE(first.empty());
  // The first fetch returns a rank-prefix of the baseline ordering.
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(first[i], base.hits[i]);
  }
}

TEST_F(SearchTest, EarlyStopBeatsFullQueryOnTraffic) {
  // The paper's usage model: most users never fetch beyond the first
  // screen, so a session stopped after one batch moves far fewer ids
  // than the baseline.
  SearchEngine engine(index_);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  SearchSession session(engine, {0, 1}, top10);
  (void)session.fetch_more();
  const auto base = engine.run_query({0, 1}, kForwardEverything);
  EXPECT_LT(session.total_ids_transferred() * 3, base.ids_transferred);
}

TEST_F(SearchTest, SessionValidatesTerms) {
  SearchEngine engine(index_);
  EXPECT_THROW(SearchSession(engine, {}, kForwardEverything),
               std::invalid_argument);
}

TEST(QueryGen, GeneratesRequestedShape) {
  const Corpus c = Corpus::synthesize(corpus_params());
  const auto queries = generate_queries(
      c, {.term_pool = 100, .num_queries = 20, .terms_per_query = 3});
  ASSERT_EQ(queries.size(), 20u);
  const auto top = c.top_terms(100);
  const std::set<TermId> pool(top.begin(), top.end());
  for (const auto& q : queries) {
    ASSERT_EQ(q.size(), 3u);
    const std::set<TermId> distinct(q.begin(), q.end());
    EXPECT_EQ(distinct.size(), 3u);  // no duplicate terms in a query
    for (const TermId t : q) EXPECT_TRUE(pool.contains(t));
  }
}

TEST(QueryGen, DeterministicAndSeedSensitive) {
  const Corpus c = Corpus::synthesize(corpus_params());
  QueryWorkloadParams params{.term_pool = 50, .num_queries = 10,
                             .terms_per_query = 2, .seed = 1};
  const auto a = generate_queries(c, params);
  const auto b = generate_queries(c, params);
  EXPECT_EQ(a, b);
  params.seed = 2;
  EXPECT_NE(generate_queries(c, params), a);
}

TEST(QueryGen, ValidatesParams) {
  const Corpus c = Corpus::synthesize(corpus_params());
  EXPECT_THROW(
      generate_queries(c, {.term_pool = 10, .num_queries = 5,
                           .terms_per_query = 0}),
      std::invalid_argument);
  EXPECT_THROW(
      generate_queries(c, {.term_pool = 2, .num_queries = 5,
                           .terms_per_query = 3}),
      std::invalid_argument);
}

}  // namespace
}  // namespace dprank
