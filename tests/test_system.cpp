#include "core/p2p_system.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

CorpusParams tiny_corpus() {
  CorpusParams p;
  p.num_docs = 1500;
  p.vocabulary = 200;
  p.mean_terms = 25;
  p.min_terms = 5;
  p.max_terms = 80;
  p.seed = 4;
  return p;
}

class SystemTest : public ::testing::Test {
 protected:
  SystemTest()
      : graph_(paper_graph(1500, 4)),
        corpus_(Corpus::synthesize(tiny_corpus())),
        system_(graph_, corpus_, make_config()) {}

  static P2PSystemConfig make_config() {
    P2PSystemConfig cfg;
    cfg.num_peers = 25;
    cfg.pagerank.epsilon = 1e-5;
    cfg.seed = 4;
    return cfg;
  }

  Digraph graph_;
  Corpus corpus_;
  P2PSystem system_;
};

TEST_F(SystemTest, RejectsMismatchedCorpus) {
  const Digraph small = paper_graph(100, 1);
  EXPECT_THROW(P2PSystem(small, corpus_, make_config()),
               std::invalid_argument);
}

TEST_F(SystemTest, MutationsRequireConvergeFirst) {
  EXPECT_THROW(system_.add_document({1, 2}, {0}), std::logic_error);
  EXPECT_THROW(system_.remove_document(0), std::logic_error);
}

TEST_F(SystemTest, ConvergeMatchesCentralized) {
  const auto passes = system_.converge();
  EXPECT_GT(passes, 1u);
  const auto ref = centralized_pagerank(graph_, 0.85, 1e-12).ranks;
  EXPECT_LT(summarize_quality(system_.ranks(), ref).p99, 1e-3);
  EXPECT_GT(system_.traffic().messages(), 0u);
}

TEST_F(SystemTest, SearchFindsDocumentsSortedByRank) {
  (void)system_.converge();
  const auto outcome = system_.search({0, 1}, kForwardEverything);
  ASSERT_FALSE(outcome.hits.empty());
  for (std::size_t i = 1; i < outcome.hits.size(); ++i) {
    EXPECT_GE(system_.rank_of(outcome.hits[i - 1]),
              system_.rank_of(outcome.hits[i]));
  }
}

TEST_F(SystemTest, AddDocumentAppearsInSearch) {
  (void)system_.converge();
  // Use two rare terms to make the new document findable precisely.
  const TermId rare_a = 198;
  const TermId rare_b = 199;
  const NodeId id = system_.add_document({rare_a, rare_b}, {1, 2, 3});
  EXPECT_EQ(id, 1500u);
  EXPECT_TRUE(system_.is_live(id));
  const auto outcome = system_.search({rare_a, rare_b}, kForwardEverything);
  EXPECT_TRUE(std::find(outcome.hits.begin(), outcome.hits.end(), id) !=
              outcome.hits.end());
}

TEST_F(SystemTest, AddDocumentKeepsRanksAccurate) {
  (void)system_.converge();
  std::vector<NodeId> ids;
  for (int i = 0; i < 5; ++i) {
    ids.push_back(system_.add_document(
        {static_cast<TermId>(i)},
        {static_cast<NodeId>(10 + i), static_cast<NodeId>(100 + i)}));
  }
  // Ground truth on the final topology.
  MutableDigraph g(graph_);
  for (int i = 0; i < 5; ++i) {
    g.add_document({static_cast<NodeId>(10 + i),
                    static_cast<NodeId>(100 + i)});
  }
  const auto exact = centralized_pagerank(g.freeze(), 0.85, 1e-12).ranks;
  const auto q = summarize_quality(system_.ranks(), exact);
  EXPECT_LT(q.max, 1e-2);
  EXPECT_LT(q.avg, 1e-4);
}

TEST_F(SystemTest, RemoveDocumentDisappearsEverywhere) {
  (void)system_.converge();
  // Find a document present in term 0's postings.
  const auto before = system_.search({0}, kForwardEverything);
  ASSERT_FALSE(before.hits.empty());
  const NodeId victim = before.hits.front();
  system_.remove_document(victim);
  EXPECT_FALSE(system_.is_live(victim));
  EXPECT_DOUBLE_EQ(system_.rank_of(victim), 0.0);
  const auto after = system_.search({0}, kForwardEverything);
  EXPECT_TRUE(std::find(after.hits.begin(), after.hits.end(), victim) ==
              after.hits.end());
  // Deleting twice is rejected.
  EXPECT_THROW(system_.remove_document(victim), std::invalid_argument);
}

TEST_F(SystemTest, LinksToDeadDocumentsRejected) {
  (void)system_.converge();
  const auto hits = system_.search({0}, kForwardEverything);
  ASSERT_FALSE(hits.hits.empty());
  const NodeId victim = hits.hits.front();
  system_.remove_document(victim);
  EXPECT_THROW(system_.add_document({5}, {victim}), std::invalid_argument);
}

TEST_F(SystemTest, IndexRefreshTracksCascadedRankChanges) {
  (void)system_.converge();
  const auto msgs_before = system_.traffic().messages();
  // Insert a document pointing at well-connected targets: the cascade
  // moves downstream ranks, which must cost index refresh messages on
  // top of the pagerank updates.
  (void)system_.add_document({3, 4}, {0, 1, 2});
  EXPECT_GT(system_.traffic().messages(), msgs_before);
}

TEST_F(SystemTest, ValidateHoldsThroughLifecycle) {
  (void)system_.converge();
  EXPECT_TRUE(system_.validate().empty());
  const NodeId a = system_.add_document({1, 2, 3}, {5, 6});
  EXPECT_TRUE(system_.validate().empty()) << "after insert";
  const NodeId b = system_.add_document({4}, {a});
  system_.remove_document(a);
  const auto issues = system_.validate();
  EXPECT_TRUE(issues.empty()) << "after delete: " << issues.front();
  system_.remove_document(b);
  EXPECT_TRUE(system_.validate().empty()) << "after second delete";
}

TEST_F(SystemTest, InsertDeleteRoundTripRestoresSearchResults) {
  (void)system_.converge();
  const auto before = system_.search({1, 2}, kForwardEverything);
  const NodeId id = system_.add_document({1, 2}, {7, 8});
  system_.remove_document(id);
  const auto after = system_.search({1, 2}, kForwardEverything);
  EXPECT_EQ(std::set<NodeId>(before.hits.begin(), before.hits.end()),
            std::set<NodeId>(after.hits.begin(), after.hits.end()));
}

TEST_F(SystemTest, IncrementalSearchPolicyWorksOnLiveSystem) {
  (void)system_.converge();
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  const auto base = system_.search({0, 1}, kForwardEverything);
  const auto inc = system_.search({0, 1}, top10);
  EXPECT_LE(inc.ids_transferred, base.ids_transferred);
  const std::set<NodeId> base_set(base.hits.begin(), base.hits.end());
  for (const NodeId d : inc.hits) EXPECT_TRUE(base_set.contains(d));
}

}  // namespace
}  // namespace dprank
