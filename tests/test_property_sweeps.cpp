// Cross-cutting property sweeps (parameterized): invariants that must
// hold at every point of the configuration space the benches explore,
// not just the paper's headline settings.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "graph/generator.hpp"
#include "graph/graph_stats.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/incremental.hpp"
#include "pagerank/quality.hpp"
#include "search/corpus.hpp"
#include "search/distributed_index.hpp"
#include "search/incremental_search.hpp"

namespace dprank {
namespace {

// ---- Engine invariants over (peers, epsilon, availability) ----------

class EngineInvariants
    : public ::testing::TestWithParam<
          std::tuple<PeerId, double, double>> {};

TEST_P(EngineInvariants, HoldEverywhere) {
  const auto [peers, eps, availability] = GetParam();
  const Digraph g = paper_graph(2500, 19);
  const auto placement = Placement::random(2500, peers, 19);
  PagerankOptions opts;
  opts.epsilon = eps;
  DistributedPagerank engine(g, placement, opts);
  DistributedRunResult run;
  if (availability < 1.0) {
    ChurnSchedule churn(peers, availability, 19);
    run = engine.run(&churn);
  } else {
    run = engine.run();
  }

  // 1. Convergence is unconditional for d < 1.
  ASSERT_TRUE(run.converged);

  // 2. Every rank is bounded below by the teleport mass (1 - d).
  for (const double r : engine.ranks()) {
    ASSERT_GE(r, 0.15 - 1e-12);
  }

  // 3. The per-pass tallies reconcile exactly with the global ledger.
  std::uint64_t msgs = 0;
  std::uint64_t local = 0;
  for (const auto& s : engine.pass_history()) {
    msgs += s.messages_sent + s.messages_delivered_late;
    local += s.local_updates;
  }
  EXPECT_EQ(msgs, engine.traffic().messages());
  EXPECT_EQ(local, engine.traffic().local_updates());

  // 4. Quality is bounded by the threshold's regime (loose universal
  // bound; Table 2 shows much better typical numbers).
  const auto ref = centralized_pagerank(g, 0.85, 1e-12).ranks;
  const auto q = summarize_quality(engine.ranks(), ref);
  EXPECT_LT(q.p50, eps * 30 + 1e-9);

  // 5. Ordering survives: the top documents agree with the reference.
  EXPECT_GT(top_k_overlap(engine.ranks(), ref, 20), 0.65);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EngineInvariants,
    ::testing::Combine(::testing::Values<PeerId>(1, 10, 100),
                       ::testing::Values(1e-2, 1e-4),
                       ::testing::Values(1.0, 0.5)));

// ---- Search invariants over forward fractions ------------------------

class SearchFractionSweep : public ::testing::TestWithParam<double> {
 protected:
  static const DistributedIndex& index() {
    static const ChordRing ring(30);
    static const DistributedIndex idx = [] {
      CorpusParams cp;
      cp.num_docs = 2500;
      cp.vocabulary = 300;
      cp.mean_terms = 40;
      cp.min_terms = 5;
      cp.max_terms = 150;
      cp.seed = 23;
      const Corpus corpus = Corpus::synthesize(cp);
      DistributedIndex built(corpus, ring);
      Rng rng(23);
      std::vector<double> ranks(cp.num_docs);
      for (auto& r : ranks) r = rng.uniform(0.15, 30.0);
      built.publish_ranks(ranks, std::vector<PeerId>(cp.num_docs, 0));
      return built;
    }();
    return idx;
  }
};

TEST_P(SearchFractionSweep, FilteredResultsAreBoundedByBaseline) {
  const double fraction = GetParam();
  const SearchEngine engine(index());
  SearchPolicy policy;
  policy.forward_fraction = fraction;
  policy.min_forward = 0;
  for (const std::vector<TermId> q :
       {std::vector<TermId>{0, 1}, std::vector<TermId>{2, 3, 4},
        std::vector<TermId>{1, 5, 9}}) {
    const auto filtered = engine.run_query(q, policy);
    const auto baseline = engine.run_query(q, kForwardEverything);
    // Filtered hits are a subset of baseline hits...
    const std::set<NodeId> base_set(baseline.hits.begin(),
                                    baseline.hits.end());
    for (const NodeId d : filtered.hits) {
      ASSERT_TRUE(base_set.contains(d));
    }
    // ...and traffic never exceeds the baseline's.
    EXPECT_LE(filtered.ids_transferred, baseline.ids_transferred);
    EXPECT_LE(filtered.hits.size(), baseline.hits.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Fractions, SearchFractionSweep,
                         ::testing::Values(0.01, 0.05, 0.1, 0.25, 0.5,
                                           0.9));

// ---- Generator invariants over exponents and sizes -------------------

class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

TEST_P(GeneratorSweep, ProducesValidPowerLawGraphs) {
  const auto [exponent, nodes] = GetParam();
  WebGraphParams params;
  params.num_nodes = nodes;
  params.out_exponent = exponent;
  params.in_exponent = exponent - 0.3;
  params.seed = 29;
  const Digraph g = generate_web_graph(params);
  EXPECT_EQ(g.num_nodes(), nodes);
  EXPECT_GT(g.num_edges(), nodes / 2);

  // No self loops, sorted adjacency (CSR contract).
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_NE(nbrs[i], u);
      if (i > 0) ASSERT_LT(nbrs[i - 1], nbrs[i]);
    }
  }

  // Heavier exponents produce sparser graphs; check the fitted slope is
  // in the right neighbourhood.
  const auto hist = degree_histogram(g, true, 40);
  const double slope = fit_power_law_slope(hist, 1, 12);
  EXPECT_NEAR(slope, -exponent, 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorSweep,
    ::testing::Combine(::testing::Values(2.0, 2.4, 2.8),
                       ::testing::Values<std::uint64_t>(5'000, 30'000)));

// ---- Incremental cascade invariants over thresholds ------------------

class CascadeSweep : public ::testing::TestWithParam<double> {};

TEST_P(CascadeSweep, CoverageBoundedByReachability) {
  const double eps = GetParam();
  const Digraph g = paper_graph(4000, 31);
  std::vector<double> ranks = centralized_pagerank(g, 0.85, 1e-10).ranks;
  PagerankOptions opts;
  opts.epsilon = eps;
  IncrementalPagerank engine(g, ranks, opts);
  Rng rng(31);
  for (int i = 0; i < 10; ++i) {
    const auto node = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    const auto stats = engine.probe_insert(node);
    // Coverage can never exceed the forward-reachable set (minus the
    // seed itself, which receives no message).
    const auto reachable = forward_reachable_count(g, node);
    EXPECT_LE(stats.nodes_covered, reachable - 1 + g.out_degree(node));
    // Messages dominate coverage (a doc may hear more than once).
    EXPECT_GE(stats.updates_delivered, stats.nodes_covered);
    // Path length is bounded by the pure-chain decay horizon
    // log(eps) / log(d).
    const double horizon =
        std::log(eps) / std::log(0.85) + 2;  // slack for rank skew
    EXPECT_LE(stats.path_length, static_cast<std::uint32_t>(horizon * 2));
  }
}

INSTANTIATE_TEST_SUITE_P(Thresholds, CascadeSweep,
                         ::testing::Values(1e-1, 1e-2, 1e-3, 1e-4));

}  // namespace
}  // namespace dprank
