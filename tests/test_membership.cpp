#include "p2p/membership.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/guid.hpp"
#include "graph/generator.hpp"
#include "p2p/placement.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/options.hpp"

namespace dprank {
namespace {

using Kind = MembershipEvent::Kind;
using Reason = MembershipCoordinator::Handoff::Reason;

Placement dht_placement(std::uint64_t num_docs, PeerId peers,
                        PeerId capacity) {
  Placement p = Placement::by_dht(num_docs, ChordRing(peers));
  p.grow_peers(capacity);
  return p;
}

TEST(MembershipCoordinator, RejectsMalformedSchedules) {
  Placement p = dht_placement(100, 8, 8);
  // Join of an already-live peer.
  EXPECT_THROW(MembershipCoordinator(p, 8, {{1, Kind::kJoin, 3}}),
               std::invalid_argument);
  // Departure of a peer that is not live.
  Placement p2 = dht_placement(100, 4, 8);
  EXPECT_THROW(MembershipCoordinator(p2, 4, {{1, Kind::kCrash, 6}}),
               std::invalid_argument);
  // Event id beyond placement capacity.
  Placement p3 = dht_placement(100, 8, 8);
  EXPECT_THROW(MembershipCoordinator(p3, 8, {{1, Kind::kJoin, 8}}),
               std::invalid_argument);
  // Schedule that empties the ring.
  Placement p4 = dht_placement(100, 2, 2);
  EXPECT_THROW(MembershipCoordinator(
                   p4, 2, {{1, Kind::kCrash, 0}, {2, Kind::kLeave, 1}}),
               std::invalid_argument);
  // Zero initial peers / capacity below the initial population.
  Placement p5 = dht_placement(100, 4, 4);
  EXPECT_THROW(MembershipCoordinator(p5, 0, {}), std::invalid_argument);
  EXPECT_THROW(MembershipCoordinator(p5, 9, {}), std::invalid_argument);
}

TEST(MembershipCoordinator, NormalizesPlacementToRingOwnership) {
  // A placement that ignores the ring is rewritten to consistent-hash
  // ownership at construction.
  Placement p = Placement::random(200, 8, /*seed=*/3);
  MembershipCoordinator m(p, 8, {});
  for (NodeId d = 0; d < p.num_docs(); ++d) {
    EXPECT_EQ(p.peer_of(d), m.ring().successor_of_key(document_guid(d)));
  }
  EXPECT_TRUE(m.quiescent());
  m.validate();
}

TEST(MembershipCoordinator, JoinSplitsArcWithPullHandoffs) {
  Placement p = dht_placement(400, 8, 9);
  MembershipCoordinator m(p, 8, {{2, Kind::kJoin, 8}});
  EXPECT_FALSE(m.quiescent());
  EXPECT_FALSE(m.begin_pass(0).any_event());
  EXPECT_FALSE(m.begin_pass(1).any_event());
  const auto& plan = m.begin_pass(2);
  EXPECT_EQ(plan.joins, (std::vector<PeerId>{8}));
  EXPECT_TRUE(m.presence()[8]);
  EXPECT_EQ(m.live_peers(), 9u);
  // Every handoff pulls a document onto the joiner, and the placement
  // already reflects the move.
  ASSERT_FALSE(plan.handoffs.empty());
  for (const auto& h : plan.handoffs) {
    EXPECT_EQ(h.to, 8u);
    EXPECT_EQ(h.reason, Reason::kJoinPull);
    EXPECT_EQ(p.peer_of(h.doc), 8u);
  }
  EXPECT_TRUE(m.quiescent());
  m.validate();
}

TEST(MembershipCoordinator, GracefulLeavePushesArcToHeir) {
  Placement p = dht_placement(400, 8, 8);
  MembershipCoordinator m(p, 8, {{1, Kind::kLeave, 3}});
  // The heir is the ring successor of the leaver's id, computed before
  // the event fires.
  (void)m.begin_pass(0);
  const auto& plan = m.begin_pass(1);
  ASSERT_EQ(plan.leaves.size(), 1u);
  EXPECT_EQ(plan.leaves[0].first, 3u);
  const PeerId heir = plan.leaves[0].second;
  EXPECT_TRUE(m.presence()[heir]);
  for (const auto& h : plan.handoffs) {
    EXPECT_EQ(h.from, 3u);
    EXPECT_EQ(h.to, heir);
    EXPECT_EQ(h.reason, Reason::kLeavePush);
  }
  EXPECT_EQ(m.detector().state(3), FailureDetector::State::kLeft);
  EXPECT_TRUE(m.quiescent());  // graceful: nothing left to detect
  m.validate();
}

TEST(MembershipCoordinator, CrashFreezesOwnershipUntilDeclared) {
  Placement p = dht_placement(400, 8, 8);
  MembershipCoordinator m(p, 8, {{1, Kind::kCrash, 5}});
  (void)m.begin_pass(0);

  const auto& crash_plan = m.begin_pass(1);
  EXPECT_EQ(crash_plan.crashes, (std::vector<PeerId>{5}));
  // Detection window: the dead peer still owns its documents and no
  // handoff has fired for them.
  EXPECT_TRUE(crash_plan.handoffs.empty());
  EXPECT_TRUE(m.undetected_crash(5));
  EXPECT_FALSE(m.quiescent());
  std::vector<NodeId> frozen;
  for (NodeId d = 0; d < p.num_docs(); ++d) {
    if (p.peer_of(d) == 5) frozen.push_back(d);
  }
  ASSERT_FALSE(frozen.empty());
  m.validate();

  // Advance until the detector verdict lands; the frozen range then
  // moves as reconstruction handoffs.
  std::uint64_t declared_pass = 0;
  std::vector<MembershipCoordinator::Handoff> handoffs;
  for (std::uint64_t pass = 2; pass < 12 && declared_pass == 0; ++pass) {
    const auto& plan = m.begin_pass(pass);
    if (!plan.declared_dead.empty()) {
      EXPECT_EQ(plan.declared_dead, (std::vector<PeerId>{5}));
      declared_pass = pass;
      handoffs = plan.handoffs;
    } else {
      EXPECT_TRUE(plan.handoffs.empty());
    }
    m.validate();
  }
  ASSERT_GT(declared_pass, 1u);
  EXPECT_FALSE(m.undetected_crash(5));
  EXPECT_TRUE(m.quiescent());
  ASSERT_EQ(m.detection_latencies().size(), 1u);
  EXPECT_EQ(m.detection_latencies()[0], declared_pass - 1);

  // Every frozen document moved off the dead owner, as kReconstruct.
  ASSERT_EQ(handoffs.size(), frozen.size());
  for (const auto& h : handoffs) {
    EXPECT_EQ(h.from, 5u);
    EXPECT_EQ(h.reason, Reason::kReconstruct);
    EXPECT_NE(p.peer_of(h.doc), 5u);
    EXPECT_TRUE(std::find(frozen.begin(), frozen.end(), h.doc) !=
                frozen.end());
  }
}

TEST(MembershipCoordinator, PassesMustIncrease) {
  Placement p = dht_placement(50, 4, 4);
  MembershipCoordinator m(p, 4, {});
  (void)m.begin_pass(3);
  EXPECT_THROW((void)m.begin_pass(3), std::invalid_argument);
  (void)m.begin_pass(4);
}

TEST(MembershipCoordinator, StaticMembershipLeavesEngineResultsBitExact) {
  // An attached coordinator with an empty schedule must not perturb the
  // iteration: same graph + same (normalized) placement => bit-identical
  // ranks and pass count vs. a plain run.
  const Digraph g = paper_graph(500, 11);
  PagerankOptions opt;
  opt.epsilon = 1e-3;

  Placement plain = Placement::by_dht(g.num_nodes(), ChordRing(16));
  DistributedPagerank baseline(g, plain, opt);
  const auto base_run = baseline.run();

  Placement shared = Placement::by_dht(g.num_nodes(), ChordRing(16));
  MembershipCoordinator m(shared, 16, {});
  DistributedPagerank engine(g, shared, opt);
  engine.attach_membership(m);
  const auto run = engine.run();

  EXPECT_TRUE(run.converged);
  EXPECT_EQ(run.passes, base_run.passes);
  ASSERT_EQ(engine.ranks().size(), baseline.ranks().size());
  for (NodeId d = 0; d < g.num_nodes(); ++d) {
    EXPECT_EQ(engine.ranks()[d], baseline.ranks()[d]) << "doc " << d;
  }
  EXPECT_EQ(engine.handoff_docs(), 0u);
  EXPECT_EQ(engine.stale_owner_queries(), 0u);
}

TEST(MembershipCoordinator, AttachmentGuards) {
  const Digraph g = paper_graph(100, 5);
  Placement p = Placement::by_dht(g.num_nodes(), ChordRing(4));
  MembershipCoordinator m(p, 4, {});
  PagerankOptions opt;

  // The coordinator must share the engine's placement object.
  Placement other = Placement::by_dht(g.num_nodes(), ChordRing(4));
  DistributedPagerank stranger(g, other, opt);
  EXPECT_THROW(stranger.attach_membership(m), std::invalid_argument);

  // Membership and fault-plan crashes are separate crash vocabularies.
  DistributedPagerank engine(g, p, opt);
  engine.attach_membership(m);
  FaultPlanConfig fpc;
  fpc.crashes.push_back({.pass = 1, .peer = 0});
  FaultPlan plan(fpc);
  engine.attach_fault_plan(plan);
  EXPECT_THROW((void)engine.run(), std::invalid_argument);
}

}  // namespace
}  // namespace dprank
