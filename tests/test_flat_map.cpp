// FlatMap64 unit tests: the open-addressing map under the messaging hot
// path (ReliableChannel edge records, Outbox queues). Checked against
// std::unordered_map as the reference model, plus the tombstone and
// rehash behaviors a node-based map never exercises.

#include "common/flat_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"

namespace dprank {
namespace {

TEST(FlatMap64, EmptyBasics) {
  FlatMap64<int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(42), nullptr);
  EXPECT_FALSE(m.contains(42));
  EXPECT_FALSE(m.erase(42));
}

TEST(FlatMap64, InsertFindErase) {
  FlatMap64<int> m;
  m[5] = 50;
  m[6] = 60;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(5), nullptr);
  EXPECT_EQ((*m.find(5)), 50);
  m[5] = 55;  // overwrite, not a second entry
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ((*m.find(5)), 55);
  EXPECT_TRUE(m.erase(5));
  EXPECT_FALSE(m.contains(5));
  EXPECT_FALSE(m.erase(5));
  EXPECT_EQ(m.size(), 1u);
}

TEST(FlatMap64, TryEmplaceReportsInsertion) {
  FlatMap64<int> m;
  auto [slot1, inserted1] = m.try_emplace(9);
  EXPECT_TRUE(inserted1);
  slot1->second = 90;
  auto [slot2, inserted2] = m.try_emplace(9);
  EXPECT_FALSE(inserted2);
  EXPECT_EQ(slot2->second, 90);
}

TEST(FlatMap64, ZeroAndMaxKeys) {
  // No reserved sentinel keys: 0 and ~0 are ordinary.
  FlatMap64<int> m;
  m[0] = 1;
  m[~0ULL] = 2;
  EXPECT_EQ((*m.find(0)), 1);
  EXPECT_EQ((*m.find(~0ULL)), 2);
  EXPECT_TRUE(m.erase(0));
  EXPECT_EQ((*m.find(~0ULL)), 2);
}

TEST(FlatMap64, GrowthKeepsEveryEntry) {
  FlatMap64<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 10'000; ++k) m[k * 7919] = k;
  EXPECT_EQ(m.size(), 10'000u);
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    ASSERT_NE(m.find(k * 7919), nullptr) << k;
    EXPECT_EQ((*m.find(k * 7919)), k);
  }
}

TEST(FlatMap64, TombstoneChurnDoesNotDegrade) {
  // Insert/erase cycles at constant live size: the in-place rehash must
  // reclaim tombstones instead of growing forever. 64 live keys cycled
  // 10k times stay findable throughout.
  FlatMap64<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 64; ++k) m[k] = k;
  for (std::uint64_t round = 0; round < 10'000; ++round) {
    EXPECT_TRUE(m.erase(round));          // oldest live key
    m[64 + round] = 64 + round;           // keep the window at 64 keys
    ASSERT_EQ(m.size(), 64u);
  }
  for (std::uint64_t k = 10'000; k < 10'064; ++k) {
    ASSERT_NE(m.find(k), nullptr) << k;
    EXPECT_EQ((*m.find(k)), k);
  }
}

TEST(FlatMap64, MatchesUnorderedMapUnderRandomOps) {
  FlatMap64<std::uint64_t> m;
  std::unordered_map<std::uint64_t, std::uint64_t> ref;
  Rng rng(2026);
  for (int op = 0; op < 200'000; ++op) {
    const std::uint64_t key = rng.bounded(512);  // force collisions
    switch (rng.bounded(3)) {
      case 0: {
        const std::uint64_t value = rng();
        m[key] = value;
        ref[key] = value;
        break;
      }
      case 1: {
        EXPECT_EQ(m.erase(key), ref.erase(key) != 0);
        break;
      }
      default: {
        const auto* slot = m.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(slot != nullptr, it != ref.end()) << key;
        if (slot != nullptr) EXPECT_EQ(*slot, it->second);
        break;
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
}

TEST(FlatMap64, ForEachVisitsExactlyLiveEntries) {
  FlatMap64<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  for (std::uint64_t k = 0; k < 100; k += 2) m.erase(k);
  std::vector<std::uint64_t> seen;
  m.for_each([&](std::uint64_t key, int& value) {
    seen.push_back(key);
    EXPECT_EQ(value, 1);
  });
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 50u);
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_EQ(seen[i], 2 * i + 1);
  }
}

TEST(FlatMap64, EraseIf) {
  FlatMap64<std::uint64_t> m;
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = k;
  m.erase_if([](std::uint64_t key, std::uint64_t&) { return key % 3 == 0; });
  EXPECT_EQ(m.size(), 666u);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    EXPECT_EQ(m.contains(k), k % 3 != 0) << k;
  }
}

TEST(FlatMap64, ClearAndReuse) {
  FlatMap64<int> m;
  for (std::uint64_t k = 0; k < 100; ++k) m[k] = 1;
  m.clear();
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.find(10), nullptr);
  m[10] = 2;
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ((*m.find(10)), 2);
}

TEST(FlatMap64, ReserveAvoidsIntermediateState) {
  FlatMap64<int> m;
  m.reserve(1000);
  for (std::uint64_t k = 0; k < 1000; ++k) m[k] = static_cast<int>(k);
  for (std::uint64_t k = 0; k < 1000; ++k) {
    ASSERT_TRUE(m.contains(k)) << k;
  }
}

}  // namespace
}  // namespace dprank
