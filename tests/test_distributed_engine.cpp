#include "pagerank/distributed_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

PagerankOptions opts(double epsilon) {
  PagerankOptions o;
  o.epsilon = epsilon;
  return o;
}

TEST(DistributedEngine, ValidatesPlacementSize) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(5, 2, 1);  // 5 != 6 nodes
  EXPECT_THROW(DistributedPagerank(g, p, opts(1e-3)), std::invalid_argument);
}

TEST(DistributedEngine, RunsOnlyOnce) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 2, 1);
  DistributedPagerank engine(g, p, opts(1e-3));
  (void)engine.run();
  EXPECT_THROW(engine.run(), std::logic_error);
}

TEST(DistributedEngine, ConvergesToCentralizedOnSmallGraph) {
  const Digraph g = paper_graph(2000, 10);
  const auto p = Placement::random(2000, 50, 10);
  DistributedPagerank engine(g, p, opts(1e-8));
  const auto run = engine.run();
  EXPECT_TRUE(run.converged);

  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  const auto q = summarize_quality(engine.ranks(), ref);
  // With a tight threshold the distributed result is essentially exact.
  EXPECT_LT(q.max, 1e-5);
}

TEST(DistributedEngine, QualityTracksThreshold) {
  // Table 2's central claim: looser epsilon -> larger relative error,
  // but even epsilon = 0.2 keeps most documents accurate.
  const Digraph g = paper_graph(5000, 11);
  const auto p = Placement::random(5000, 100, 11);
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;

  double prev_avg = -1.0;
  for (const double eps : {0.2, 1e-2, 1e-4, 1e-6}) {
    DistributedPagerank engine(g, p, opts(eps));
    ASSERT_TRUE(engine.run().converged);
    const auto q = summarize_quality(engine.ranks(), ref);
    if (prev_avg >= 0) {
      EXPECT_LE(q.avg, prev_avg * 1.5 + 1e-12)
          << "avg error should not grow as epsilon tightens";
    }
    prev_avg = q.avg;
  }
  // The tightest run must be very accurate.
  EXPECT_LT(prev_avg, 1e-5);
}

TEST(DistributedEngine, SingleNodeGraphConvergesImmediately) {
  const Digraph g = Digraph::from_edges(1, {});
  const auto p = Placement::random(1, 1, 1);
  DistributedPagerank engine(g, p, opts(1e-3));
  const auto run = engine.run();
  EXPECT_TRUE(run.converged);
  EXPECT_NEAR(engine.ranks()[0], 0.15, 1e-12);
  EXPECT_EQ(engine.traffic().messages(), 0u);
}

TEST(DistributedEngine, SamePeerUpdatesAreFree) {
  // All documents on one peer: zero network messages, only local updates.
  const Digraph g = paper_graph(500, 12);
  const auto p = Placement::random(500, 1, 12);
  DistributedPagerank engine(g, p, opts(1e-6));
  ASSERT_TRUE(engine.run().converged);
  EXPECT_EQ(engine.traffic().messages(), 0u);
  EXPECT_GT(engine.traffic().local_updates(), 0u);
}

TEST(DistributedEngine, MessageCountsScaleWithThreshold) {
  // Table 3: lower epsilon => more messages, roughly logarithmically.
  const Digraph g = paper_graph(3000, 13);
  const auto p = Placement::random(3000, 100, 13);
  std::uint64_t prev = 0;
  for (const double eps : {0.2, 1e-2, 1e-4}) {
    DistributedPagerank engine(g, p, opts(eps));
    ASSERT_TRUE(engine.run().converged);
    const auto msgs = engine.traffic().messages();
    EXPECT_GT(msgs, prev);
    prev = msgs;
  }
}

TEST(DistributedEngine, PassHistoryIsConsistent) {
  const Digraph g = paper_graph(1000, 14);
  const auto p = Placement::random(1000, 20, 14);
  DistributedPagerank engine(g, p, opts(1e-4));
  const auto run = engine.run();
  const auto& history = engine.pass_history();
  ASSERT_EQ(history.size(), run.passes);
  // First pass recomputes every document.
  EXPECT_EQ(history.front().docs_recomputed, 1000u);
  // Messages in the ledger match the per-pass tallies.
  std::uint64_t sum = 0;
  for (const auto& s : history) {
    sum += s.messages_sent + s.messages_delivered_late;
    EXPECT_LE(s.max_peer_messages, s.messages_sent);
  }
  EXPECT_EQ(sum, engine.traffic().messages());
  // Final pass is quiet (that is why it converged).
  EXPECT_EQ(history.back().messages_sent, 0u);
}

TEST(DistributedEngine, ObserverSeesEveryPass) {
  const Digraph g = paper_graph(500, 15);
  const auto p = Placement::random(500, 10, 15);
  DistributedPagerank engine(g, p, opts(1e-3));
  std::uint64_t calls = 0;
  std::uint64_t last_pass = 0;
  const auto run = engine.run(nullptr, [&](std::uint64_t pass,
                                           const std::vector<double>& ranks) {
    EXPECT_EQ(ranks.size(), 500u);
    last_pass = pass;
    ++calls;
  });
  EXPECT_EQ(calls, run.passes);
  EXPECT_EQ(last_pass + 1, run.passes);
}

TEST(DistributedEngine, ChurnStillConverges) {
  // §4.3 dynamic effects: the algorithm converges with only half the
  // peers present, at a slower rate.
  const Digraph g = paper_graph(2000, 16);
  const auto p = Placement::random(2000, 50, 16);

  DistributedPagerank full(g, p, opts(1e-4));
  const auto run_full = full.run();
  ASSERT_TRUE(run_full.converged);

  ChurnSchedule churn(50, 0.5, 99);
  DistributedPagerank half(g, p, opts(1e-4));
  const auto run_half = half.run(&churn);
  ASSERT_TRUE(run_half.converged);

  EXPECT_GT(run_half.passes, run_full.passes);

  // And the answer still matches the centralized reference closely.
  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  const auto q = summarize_quality(half.ranks(), ref);
  EXPECT_LT(q.avg, 0.01);
}

TEST(DistributedEngine, ChurnUsesOutboxAndDeliversLate) {
  const Digraph g = paper_graph(2000, 17);
  const auto p = Placement::random(2000, 50, 17);
  ChurnSchedule churn(50, 0.5, 7);
  DistributedPagerank engine(g, p, opts(1e-4));
  ASSERT_TRUE(engine.run(&churn).converged);
  EXPECT_GT(engine.outbox_peak(), 0u);
  std::uint64_t late = 0;
  for (const auto& s : engine.pass_history()) {
    late += s.messages_delivered_late;
  }
  EXPECT_GT(late, 0u);
  // Convergence requires every parked message to have been delivered.
  // (outbox drained == engine reported converged, asserted above.)
}

TEST(DistributedEngine, ChurnPeerCountMustMatch) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(6, 3, 1);
  ChurnSchedule churn(5, 0.5, 1);  // 5 != 3 peers
  DistributedPagerank engine(g, p, opts(1e-3));
  EXPECT_THROW(engine.run(&churn), std::invalid_argument);
}

TEST(DistributedEngine, ConvergenceRateGrowsSlowlyWithSize) {
  // Table 1: 500x more nodes costs only ~60% more passes. Check the mild
  // growth on a 10x spread.
  const auto p1 = Placement::random(1000, 50, 18);
  const auto p2 = Placement::random(10'000, 50, 18);
  const Digraph g_small = paper_graph(1000, 18);
  const Digraph g_large = paper_graph(10'000, 18);
  DistributedPagerank small(g_small, p1, opts(1e-3));
  DistributedPagerank large(g_large, p2, opts(1e-3));
  const auto run_small = small.run();
  const auto run_large = large.run();
  ASSERT_TRUE(run_small.converged);
  ASSERT_TRUE(run_large.converged);
  EXPECT_LT(run_large.passes, run_small.passes * 3);
}

// Property sweep: for every (seed, epsilon) combination the engine
// converges and respects the per-document stopping rule against the
// centralized reference.
class EngineSweep
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(EngineSweep, ConvergesAndTracksReference) {
  const auto [seed, eps] = GetParam();
  const Digraph g = paper_graph(1500, seed);
  const auto p = Placement::random(1500, 30, seed);
  DistributedPagerank engine(g, p, opts(eps));
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  ASSERT_GT(run.passes, 0u);

  const auto ref = centralized_pagerank(g, 0.85, 1e-13).ranks;
  const auto q = summarize_quality(engine.ranks(), ref);
  // Loose but universal bound: median error stays within ~20x epsilon
  // (the paper's Table 2 shows it is usually far better).
  EXPECT_LT(q.p50, eps * 20 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndThresholds, EngineSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 3u),
                       ::testing::Values(1e-2, 1e-3, 1e-5)));

}  // namespace
}  // namespace dprank
