#include "graph/mutable_digraph.hpp"

#include <gtest/gtest.h>

#include <set>
#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "graph/generator.hpp"

namespace dprank {
namespace {

TEST(MutableDigraph, StartsEmpty) {
  MutableDigraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(MutableDigraph, AddNodesAndEdges) {
  MutableDigraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(2), 1u);
}

TEST(MutableDigraph, RejectsSelfLoopsAndDuplicates) {
  MutableDigraph g(2);
  EXPECT_FALSE(g.add_edge(0, 0));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(MutableDigraph, RemoveEdge) {
  MutableDigraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.in_degree(1), 0u);
}

TEST(MutableDigraph, AddDocumentOnlyHasOutlinks) {
  MutableDigraph g(3);
  g.add_edge(0, 1);
  const NodeId id = g.add_document({0, 2});
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(g.out_degree(id), 2u);
  EXPECT_EQ(g.in_degree(id), 0u);  // a new document cannot have in-links
  EXPECT_TRUE(g.has_edge(id, 0));
  EXPECT_TRUE(g.has_edge(id, 2));
}

TEST(MutableDigraph, IsolateNodeRemovesBothDirections) {
  MutableDigraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 1);
  g.isolate_node(1);
  EXPECT_TRUE(g.is_isolated(1));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.out_degree(0), 0u);
  EXPECT_EQ(g.in_degree(2), 0u);
  EXPECT_EQ(g.out_degree(3), 0u);
  // Node ids remain stable after isolation.
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(MutableDigraph, RoundTripWithCsr) {
  const Digraph original = paper_graph(1000, 21);
  const MutableDigraph mutable_copy(original);
  EXPECT_EQ(mutable_copy.num_nodes(), original.num_nodes());
  EXPECT_EQ(mutable_copy.num_edges(), original.num_edges());
  const Digraph frozen = mutable_copy.freeze();
  ASSERT_EQ(frozen.num_edges(), original.num_edges());
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    const auto a = original.out_neighbors(u);
    const auto b = frozen.out_neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()));
  }
}

TEST(MutableDigraph, InsertDeleteCycleRestoresShape) {
  const Digraph base = paper_graph(500, 13);
  MutableDigraph g(base);
  const EdgeId edges_before = g.num_edges();
  const NodeId id = g.add_document({1, 2, 3});
  EXPECT_EQ(g.num_edges(), edges_before + 3);
  g.isolate_node(id);
  EXPECT_EQ(g.num_edges(), edges_before);
  EXPECT_TRUE(g.is_isolated(id));
}

// §4.7 regression: a long randomized stream of the exact mutations the
// incremental protocol performs — document inserts (outlinks only),
// edge adds/removes, document deletions (isolate) — must preserve the
// adjacency-mirror invariant after *every* step. validate() throws
// ContractViolation on the first inconsistency, so any break pinpoints
// the offending mutation instead of surfacing passes later as a wrong
// rank. A shadow edge-set double-checks the edge count.
TEST(MutableDigraph, RandomizedMutationsPreserveInvariants) {
  if (!contracts::enabled()) {
    GTEST_SKIP() << "contracts compiled out (DPRANK_CHECK_INVARIANTS off)";
  }
  Rng rng(0xD16E57ULL);
  MutableDigraph g(paper_graph(200, 17));
  std::set<std::pair<NodeId, NodeId>> shadow;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const NodeId v : g.out_neighbors(u)) shadow.emplace(u, v);
  }

  for (int step = 0; step < 2000; ++step) {
    const NodeId n = g.num_nodes();
    const double roll = rng.uniform();
    if (roll < 0.15) {
      // Insert a fresh document with random out-links (§4.7: outlinks
      // only; duplicates in the request must be deduplicated).
      std::vector<NodeId> links;
      const auto want = 1 + rng.bounded(8);
      for (std::uint64_t i = 0; i < want; ++i) {
        links.push_back(static_cast<NodeId>(rng.bounded(n)));
      }
      const NodeId id = g.add_document(links);
      EXPECT_EQ(g.in_degree(id), 0u);
      for (const NodeId v : g.out_neighbors(id)) shadow.emplace(id, v);
    } else if (roll < 0.55) {
      const auto u = static_cast<NodeId>(rng.bounded(n));
      const auto v = static_cast<NodeId>(rng.bounded(n));
      const bool added = g.add_edge(u, v);
      EXPECT_EQ(added, u != v && shadow.emplace(u, v).second);
      if (u == v) shadow.erase({u, v});
    } else if (roll < 0.9) {
      const auto u = static_cast<NodeId>(rng.bounded(n));
      const auto v = static_cast<NodeId>(rng.bounded(n));
      EXPECT_EQ(g.remove_edge(u, v), shadow.erase({u, v}) == 1);
    } else {
      // Document deletion: drop the row and column (§4.7).
      const auto v = static_cast<NodeId>(rng.bounded(n));
      g.isolate_node(v);
      EXPECT_TRUE(g.is_isolated(v));
      for (auto it = shadow.begin(); it != shadow.end();) {
        it = (it->first == v || it->second == v) ? shadow.erase(it) : ++it;
      }
    }
    ASSERT_NO_THROW(g.validate()) << "after step " << step;
    ASSERT_EQ(g.num_edges(), shadow.size()) << "after step " << step;
  }
  // The survivors must round-trip through CSR unchanged.
  const Digraph frozen = g.freeze();
  EXPECT_EQ(frozen.num_edges(), shadow.size());
  frozen.validate();
}

}  // namespace
}  // namespace dprank
