#include "graph/mutable_digraph.hpp"

#include <gtest/gtest.h>

#include "graph/generator.hpp"

namespace dprank {
namespace {

TEST(MutableDigraph, StartsEmpty) {
  MutableDigraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(MutableDigraph, AddNodesAndEdges) {
  MutableDigraph g(3);
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_TRUE(g.add_edge(1, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.in_degree(2), 1u);
}

TEST(MutableDigraph, RejectsSelfLoopsAndDuplicates) {
  MutableDigraph g(2);
  EXPECT_FALSE(g.add_edge(0, 0));
  EXPECT_TRUE(g.add_edge(0, 1));
  EXPECT_FALSE(g.add_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(MutableDigraph, RemoveEdge) {
  MutableDigraph g(3);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  EXPECT_TRUE(g.remove_edge(0, 1));
  EXPECT_FALSE(g.remove_edge(0, 1));  // already gone
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.in_degree(1), 0u);
}

TEST(MutableDigraph, AddDocumentOnlyHasOutlinks) {
  MutableDigraph g(3);
  g.add_edge(0, 1);
  const NodeId id = g.add_document({0, 2});
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(g.out_degree(id), 2u);
  EXPECT_EQ(g.in_degree(id), 0u);  // a new document cannot have in-links
  EXPECT_TRUE(g.has_edge(id, 0));
  EXPECT_TRUE(g.has_edge(id, 2));
}

TEST(MutableDigraph, IsolateNodeRemovesBothDirections) {
  MutableDigraph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 1);
  g.isolate_node(1);
  EXPECT_TRUE(g.is_isolated(1));
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.out_degree(0), 0u);
  EXPECT_EQ(g.in_degree(2), 0u);
  EXPECT_EQ(g.out_degree(3), 0u);
  // Node ids remain stable after isolation.
  EXPECT_EQ(g.num_nodes(), 4u);
}

TEST(MutableDigraph, RoundTripWithCsr) {
  const Digraph original = paper_graph(1000, 21);
  const MutableDigraph mutable_copy(original);
  EXPECT_EQ(mutable_copy.num_nodes(), original.num_nodes());
  EXPECT_EQ(mutable_copy.num_edges(), original.num_edges());
  const Digraph frozen = mutable_copy.freeze();
  ASSERT_EQ(frozen.num_edges(), original.num_edges());
  for (NodeId u = 0; u < original.num_nodes(); ++u) {
    const auto a = original.out_neighbors(u);
    const auto b = frozen.out_neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()));
  }
}

TEST(MutableDigraph, InsertDeleteCycleRestoresShape) {
  const Digraph base = paper_graph(500, 13);
  MutableDigraph g(base);
  const EdgeId edges_before = g.num_edges();
  const NodeId id = g.add_document({1, 2, 3});
  EXPECT_EQ(g.num_edges(), edges_before + 3);
  g.isolate_node(id);
  EXPECT_EQ(g.num_edges(), edges_before);
  EXPECT_TRUE(g.is_isolated(id));
}

}  // namespace
}  // namespace dprank
