// Differential fuzz: U128 arithmetic against the compiler's native
// unsigned __int128. U128 exists so the public headers need no
// compiler-extension types; this suite pins its semantics to the real
// thing across randomized inputs and the full shift range.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "common/uint128.hpp"

namespace dprank {
namespace {

using Native = unsigned __int128;

Native to_native(const U128& v) {
  return (static_cast<Native>(v.hi) << 64) | v.lo;
}

U128 from_native(Native v) {
  return U128{static_cast<std::uint64_t>(v >> 64),
              static_cast<std::uint64_t>(v)};
}

class U128Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(U128Fuzz, AddSubXorAndOrMatchNative) {
  Rng rng(GetParam());
  for (int i = 0; i < 20'000; ++i) {
    const U128 a{rng(), rng()};
    const U128 b{rng(), rng()};
    const Native na = to_native(a);
    const Native nb = to_native(b);
    ASSERT_EQ(a + b, from_native(na + nb));
    ASSERT_EQ(a - b, from_native(na - nb));
    ASSERT_EQ(a ^ b, from_native(na ^ nb));
    ASSERT_EQ(a & b, from_native(na & nb));
    ASSERT_EQ(a | b, from_native(na | nb));
  }
}

TEST_P(U128Fuzz, ComparisonMatchesNative) {
  Rng rng(GetParam() ^ 0xC0FFEEULL);
  for (int i = 0; i < 20'000; ++i) {
    const U128 a{rng(), rng()};
    // Bias toward near-collisions to exercise hi==hi paths.
    U128 b = a;
    if (rng.chance(0.5)) b.lo = rng();
    if (rng.chance(0.3)) b.hi = rng();
    const Native na = to_native(a);
    const Native nb = to_native(b);
    ASSERT_EQ(a < b, na < nb);
    ASSERT_EQ(a <= b, na <= nb);
    ASSERT_EQ(a == b, na == nb);
    ASSERT_EQ(a > b, na > nb);
  }
}

TEST_P(U128Fuzz, ShiftsMatchNative) {
  Rng rng(GetParam() ^ 0x5EEDULL);
  for (int i = 0; i < 4'000; ++i) {
    const U128 a{rng(), rng()};
    const Native na = to_native(a);
    for (int k = 0; k < 128; ++k) {
      ASSERT_EQ(a << k, from_native(na << k)) << "k=" << k;
      ASSERT_EQ(a >> k, from_native(na >> k)) << "k=" << k;
    }
  }
}

TEST_P(U128Fuzz, RingDistanceMatchesNativeSubtraction) {
  Rng rng(GetParam() ^ 0xD157ULL);
  for (int i = 0; i < 20'000; ++i) {
    const U128 a{rng(), rng()};
    const U128 b{rng(), rng()};
    ASSERT_EQ(ring_distance(a, b), from_native(to_native(b) - to_native(a)));
  }
}

TEST_P(U128Fuzz, IntervalMembershipMatchesNaiveDefinition) {
  // (from, to] membership via explicit case analysis on wrap.
  Rng rng(GetParam() ^ 0x17E2ULL);
  for (int i = 0; i < 20'000; ++i) {
    const Native from = to_native(U128{rng(), rng()});
    const Native to = to_native(U128{rng(), rng()});
    const Native id = to_native(U128{rng(), rng()});
    bool naive;
    if (from == to) {
      naive = true;  // full ring
    } else if (from < to) {
      naive = id > from && id <= to;
    } else {  // wrapping interval
      naive = id > from || id <= to;
    }
    ASSERT_EQ(
        in_interval_oc(from_native(id), from_native(from), from_native(to)),
        naive);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, U128Fuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace dprank
