#include "search/corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace dprank {
namespace {

CorpusParams small_params() {
  CorpusParams p;
  p.num_docs = 2000;
  p.vocabulary = 500;
  p.mean_terms = 60;
  p.min_terms = 5;
  p.max_terms = 300;
  p.seed = 42;
  return p;
}

TEST(Corpus, ValidatesParams) {
  CorpusParams p = small_params();
  p.num_docs = 0;
  EXPECT_THROW(Corpus::synthesize(p), std::invalid_argument);
  p = small_params();
  p.min_terms = 0;
  EXPECT_THROW(Corpus::synthesize(p), std::invalid_argument);
  p = small_params();
  p.max_terms = p.vocabulary + 1;
  EXPECT_THROW(Corpus::synthesize(p), std::invalid_argument);
}

TEST(Corpus, Deterministic) {
  const Corpus a = Corpus::synthesize(small_params());
  const Corpus b = Corpus::synthesize(small_params());
  ASSERT_EQ(a.num_docs(), b.num_docs());
  for (NodeId d = 0; d < a.num_docs(); ++d) {
    ASSERT_EQ(a.terms_of(d), b.terms_of(d));
  }
}

TEST(Corpus, DocumentsHaveSortedDistinctTerms) {
  const Corpus c = Corpus::synthesize(small_params());
  for (NodeId d = 0; d < c.num_docs(); ++d) {
    const auto& terms = c.terms_of(d);
    ASSERT_FALSE(terms.empty());
    for (std::size_t i = 1; i < terms.size(); ++i) {
      ASSERT_LT(terms[i - 1], terms[i]);
    }
    ASSERT_LT(terms.back(), c.vocabulary());
  }
}

TEST(Corpus, DocumentFrequenciesConsistent) {
  const Corpus c = Corpus::synthesize(small_params());
  std::vector<std::uint32_t> df(c.vocabulary(), 0);
  for (NodeId d = 0; d < c.num_docs(); ++d) {
    for (const TermId t : c.terms_of(d)) ++df[t];
  }
  for (TermId t = 0; t < c.vocabulary(); ++t) {
    ASSERT_EQ(c.doc_frequency(t), df[t]) << "term " << t;
  }
}

TEST(Corpus, ZipfHeadDominates) {
  // Low TermIds are the frequent Zipf ranks: the most frequent term
  // should appear in the vast majority of documents, the tail in few.
  const Corpus c = Corpus::synthesize(small_params());
  EXPECT_GT(c.doc_frequency(0), c.num_docs() / 2);
  EXPECT_LT(c.doc_frequency(c.vocabulary() - 1), c.num_docs() / 4);
}

TEST(Corpus, TopTermsSortedByFrequency) {
  const Corpus c = Corpus::synthesize(small_params());
  const auto top = c.top_terms(100);
  ASSERT_EQ(top.size(), 100u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    ASSERT_GE(c.doc_frequency(top[i - 1]), c.doc_frequency(top[i]));
  }
  // Requesting more than the vocabulary clamps.
  EXPECT_EQ(c.top_terms(10'000).size(), c.vocabulary());
}

TEST(Corpus, PaperScaleCorpusShape) {
  // Defaults match §4.9: ~11k documents, 1880 dimensions.
  const Corpus c = Corpus::synthesize(CorpusParams{});
  EXPECT_EQ(c.num_docs(), 11'000u);
  EXPECT_EQ(c.vocabulary(), 1880u);
  // Top-100 terms must all have healthy posting lists (the queries are
  // built from them).
  for (const TermId t : c.top_terms(100)) {
    EXPECT_GT(c.doc_frequency(t), 200u);
  }
}

}  // namespace
}  // namespace dprank
