// Observability subsystem tests: histogram quantile error bounds,
// registry thread-safety (both a raw multi-writer hammer and the async
// runtime's live instrumentation), deterministic trace export,
// TrafficMeter shim arithmetic, and the two end-to-end acceptance
// criteria — a faulty message journey reconstructable by trace id, and
// the exported residual series matching the engine's pass history.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dht/ring.hpp"
#include "fault/fault_plan.hpp"
#include "graph/generator.hpp"
#include "net/ip_cache.hpp"
#include "net/traffic_meter.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p2p/placement.hpp"
#include "pagerank/async_runtime.hpp"
#include "pagerank/distributed_engine.hpp"
#include "sim/experiment.hpp"
#include "sim/time_model.hpp"

namespace dprank {
namespace {

// ---- primitives ----

TEST(ObsCounter, AddAndValue) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  const obs::Counter copy = c;  // value-copy semantics for aggregates
  EXPECT_EQ(copy.value(), 42u);
}

TEST(ObsHistogram, EmptySummary) {
  const obs::Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.5), 0.0);
  const auto s = h.summarize();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.p99, 0.0);
}

/// Exact nearest-rank quantile of a sorted sample.
double exact_quantile(const std::vector<double>& sorted, double q) {
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

TEST(ObsHistogram, QuantileErrorBound) {
  // Log-uniform values over 6 decades, inserted in scrambled order: every
  // estimate must be within the documented relative-error bound of the
  // exact nearest-rank value.
  obs::Histogram h;
  std::vector<double> values;
  std::uint64_t lcg = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 20'000; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u = static_cast<double>(lcg >> 11) / 9007199254740992.0;
    values.push_back(std::pow(10.0, 6.0 * u));  // in [1, 1e6)
  }
  for (const double v : values) h.record(v);
  std::sort(values.begin(), values.end());

  for (const double q : {0.01, 0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double exact = exact_quantile(values, q);
    const double est = h.quantile(q);
    EXPECT_NEAR(est, exact, exact * obs::Histogram::kQuantileRelError)
        << "q=" << q;
  }
  EXPECT_EQ(h.count(), values.size());
  // min/max are tracked exactly, and quantiles clamp to them.
  const auto s = h.summarize();
  EXPECT_EQ(s.min, values.front());
  EXPECT_EQ(s.max, values.back());
  EXPECT_LE(h.quantile(1.0), s.max);
}

TEST(ObsHistogram, ZeroAndClampedValues) {
  obs::Histogram h;
  h.record(0.0);
  h.record(0.0);
  h.record(5.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.summarize().min, 0.0);
  EXPECT_NEAR(h.quantile(0.5), 0.0, 1e-12);
}

TEST(ObsSeries, AppendsInOrder) {
  obs::Series s;
  s.append(0, 1.5);
  s.append(1, 0.75);
  const auto pts = s.points();
  ASSERT_EQ(pts.size(), 2u);
  EXPECT_EQ(pts[1], (std::pair<double, double>{1.0, 0.75}));
}

// ---- registry thread-safety ----

TEST(ObsRegistry, ConcurrentWritersAreExact) {
  obs::MetricsRegistry reg;
  auto& c = reg.counter("hammer.count");
  auto& h = reg.histogram("hammer.hist");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<double>(t + 1));
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("hammer.count"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsRegistry, StableAddressesAcrossLookups) {
  obs::MetricsRegistry reg;
  auto& a = reg.counter("same.name");
  auto& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
}

TEST(ObsRegistry, AsyncRuntimeLiveInstrumentation) {
  // The threaded runtime streams into the registry from every worker
  // concurrently; the flushed totals must match the run's own counts.
  const Digraph g = paper_graph(2'000, 7);
  const auto p = Placement::random(2'000, 8, 7);
  PagerankOptions o;
  o.epsilon = 1e-4;
  AsyncPagerankRuntime runtime(g, p, o);
  obs::MetricsRegistry reg;
  runtime.bind_metrics(reg);
  const auto result = runtime.run();
  ASSERT_TRUE(result.converged);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("async.cross_messages"),
            result.cross_peer_messages);
  EXPECT_EQ(snap.counters.at("async.local_updates"), result.local_updates);
  EXPECT_EQ(snap.counters.at("async.recomputes"), result.recomputes);
  EXPECT_EQ(snap.counters.at("async.runs"), 1u);
  EXPECT_GT(snap.histograms.at("async.mail_batch_size").count, 0u);
}

// ---- TrafficMeter shim ----

/// The original plain-uint64 TrafficMeter arithmetic, kept here as the
/// reference the shim must replay bit-for-bit.
struct LegacyMeter {
  std::uint64_t messages = 0, local_updates = 0, resends = 0;
  std::uint64_t hop_transmissions = 0, bytes = 0;
  void record_message(std::uint64_t b, std::uint64_t h) {
    messages += 1;
    hop_transmissions += h;
    bytes += b * h;
  }
  void record_messages(std::uint64_t count, std::uint64_t bytes_each) {
    messages += count;
    hop_transmissions += count;
    bytes += count * bytes_each;
  }
  void record_local_update() { local_updates += 1; }
  void record_resend(std::uint64_t b) {
    resends += 1;
    bytes += b;
  }
};

TEST(ObsTrafficShim, ReplaysLegacyArithmetic) {
  TrafficMeter meter;
  LegacyMeter ref;
  std::uint64_t lcg = 12345;
  for (int i = 0; i < 10'000; ++i) {
    lcg = lcg * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto op = (lcg >> 60) % 4;
    const std::uint64_t b = (lcg >> 20) % 100 + 1;
    const std::uint64_t h = (lcg >> 40) % 9 + 1;
    switch (op) {
      case 0:
        meter.record_message(b, h);
        ref.record_message(b, h);
        break;
      case 1:
        meter.record_messages(h, b);
        ref.record_messages(h, b);
        break;
      case 2:
        meter.record_local_update();
        ref.record_local_update();
        break;
      default:
        meter.record_resend(b);
        ref.record_resend(b);
        break;
    }
  }
  EXPECT_EQ(meter.messages(), ref.messages);
  EXPECT_EQ(meter.local_updates(), ref.local_updates);
  EXPECT_EQ(meter.resends(), ref.resends);
  EXPECT_EQ(meter.hop_transmissions(), ref.hop_transmissions);
  EXPECT_EQ(meter.bytes(), ref.bytes);
}

TEST(ObsTrafficShim, MergeResetAndFlush) {
  TrafficMeter a;
  TrafficMeter b;
  a.record_message(24, 3);
  b.record_resend(24);
  b.record_local_update();
  a.merge(b);
  EXPECT_EQ(a.messages(), 1u);
  EXPECT_EQ(a.resends(), 1u);
  EXPECT_EQ(a.bytes(), 24u * 3 + 24);

  obs::MetricsRegistry reg;
  a.flush_to(reg);
  a.flush_to(reg);  // additive across flushes
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("net.messages"), 2u);
  EXPECT_EQ(snap.counters.at("net.bytes"), 2u * (24u * 3 + 24));

  a.reset();
  EXPECT_EQ(a.messages(), 0u);
  EXPECT_EQ(a.bytes(), 0u);
}

// ---- tracer + exporters ----

TEST(ObsTracer, SamplingAndEventCap) {
  obs::Tracer t({.max_events = 3, .sample_every = 2});
  EXPECT_NE(t.begin_trace(), obs::kNoTrace);  // 1st kept
  EXPECT_EQ(t.begin_trace(), obs::kNoTrace);  // 2nd sampled out
  EXPECT_NE(t.begin_trace(), obs::kNoTrace);
  for (int i = 0; i < 5; ++i) t.instant("x", "test", 0, {});
  EXPECT_EQ(t.events().size(), 3u);
  EXPECT_EQ(t.dropped_events(), 2u);
}

TEST(ObsTracer, SimulatedTimeIsMonotone) {
  obs::Tracer t;
  t.advance_time(10.0);
  t.advance_time(5.0);  // ignored: time never runs backwards
  EXPECT_EQ(t.now_us(), 10.0);
  t.instant("a", "test", 0, {});
  t.instant("b", "test", 0, {});
  ASSERT_EQ(t.events().size(), 2u);
  EXPECT_GT(t.events()[1].ts_us, t.events()[0].ts_us);
}

TEST(ObsExport, ChromeTraceDeterministicAcrossIdenticalRuns) {
  // Golden-style determinism: two fresh engines on the same seeded
  // 2-peer experiment must export byte-identical Chrome traces.
  const Digraph g = figure2_graph();
  const auto p = Placement::random(g.num_nodes(), 2, 11);
  PagerankOptions o;
  o.epsilon = 1e-4;
  const NetworkParams net;
  std::string exported[2];
  for (auto& out : exported) {
    DistributedPagerank engine(g, p, o);
    obs::Tracer tracer;
    engine.attach_tracer(tracer, make_pass_clock(net));
    ASSERT_TRUE(engine.run().converged);
    out = obs::chrome_trace_string(tracer);
  }
  EXPECT_GT(exported[0].size(), 2u);
  EXPECT_EQ(exported[0], exported[1]);
  EXPECT_NE(exported[0].find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(exported[0].find("update.send"), std::string::npos);
  EXPECT_NE(exported[0].find("\"ph\":\"X\""), std::string::npos);
}

TEST(ObsExport, MetricsJsonAndCsvRoundTripNames) {
  obs::MetricsRegistry reg;
  reg.counter("a.count").add(7);
  reg.gauge("a.gauge").set(2.5);
  reg.histogram("a.hist").record(3.0);
  reg.series("a.series").append(0, 1.0);
  const auto snap = reg.snapshot();

  std::ostringstream json;
  obs::write_metrics_json(snap, json);
  for (const char* key : {"a.count", "a.gauge", "a.hist", "a.series"}) {
    EXPECT_NE(json.str().find(key), std::string::npos) << key;
  }
  std::ostringstream json2;
  obs::write_metrics_json(snap, json2);
  EXPECT_EQ(json.str(), json2.str());  // deterministic formatting

  std::ostringstream csv;
  obs::write_metrics_csv(snap, csv);
  EXPECT_NE(csv.str().find("counter,a.count"), std::string::npos);
  EXPECT_NE(csv.str().find("histogram,a.hist"), std::string::npos);
}

TEST(ObsExport, JsonEscaping) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\n");
  EXPECT_EQ(obs::format_double(1.0), "1");
}

// ---- engine integration: the acceptance criteria ----

TEST(ObsEngine, AttachAfterRunRejected) {
  const Digraph g = figure2_graph();
  const auto p = Placement::random(g.num_nodes(), 2, 1);
  PagerankOptions o;
  o.epsilon = 1e-3;
  DistributedPagerank engine(g, p, o);
  (void)engine.run();
  obs::MetricsRegistry reg;
  obs::Tracer tracer;
  EXPECT_THROW(engine.attach_metrics(reg), std::logic_error);
  EXPECT_THROW(engine.attach_tracer(tracer), std::logic_error);
}

TEST(ObsEngine, ResidualSeriesMatchesPassHistory) {
  // Acceptance criterion: the exported pagerank.residual series must
  // match the engine's own pass history pass-for-pass.
  const StandardExperiment exp({.num_docs = 2'000, .num_peers = 40});
  obs::MetricsRegistry reg;
  StandardExperiment::Telemetry telemetry;
  telemetry.registry = &reg;
  const auto outcome = exp.run_distributed(nullptr, telemetry);
  ASSERT_TRUE(outcome.run.converged);

  const auto snap = reg.snapshot();
  const auto& residual = snap.series.at("pagerank.residual");
  ASSERT_EQ(residual.size(), outcome.history.size());
  for (std::size_t i = 0; i < residual.size(); ++i) {
    EXPECT_EQ(residual[i].first,
              static_cast<double>(outcome.history[i].pass));
    EXPECT_EQ(residual[i].second, outcome.history[i].max_rel_change);
  }
  EXPECT_EQ(snap.counters.at("pagerank.passes"), outcome.run.passes);
  EXPECT_EQ(snap.counters.at("pagerank.converged_runs"), 1u);
}

TEST(ObsEngine, FaultyJourneyReconstructableByTraceId) {
  // Acceptance criterion: on a seeded faulty run, at least one message's
  // full journey — send, drop, retransmission(s), final application —
  // must be reconstructable by filtering events on its trace id, with
  // timestamps in causal order. DHT hop steps must appear in the trace
  // (overlay attached, so cold sends route through the ring).
  const Digraph g = paper_graph(2'000, 17);
  const auto p = Placement::random(2'000, 40, 17);
  PagerankOptions o;
  o.epsilon = 1e-3;
  DistributedPagerank engine(g, p, o);
  const ChordRing ring(40);
  IpCache cache(true);
  engine.attach_overlay(ring, cache);
  FaultPlan plan({.drop_probability = 0.15, .acked_delivery = true,
                  .seed = 99});
  engine.attach_fault_plan(plan);
  obs::Tracer tracer;
  engine.attach_tracer(tracer, make_pass_clock(NetworkParams{}));
  const auto run = engine.run();
  ASSERT_TRUE(run.converged);
  ASSERT_GT(engine.dropped_messages(), 0u);
  ASSERT_GT(engine.traffic().resends(), 0u);

  struct Journey {
    bool sent = false, dropped = false, retransmitted = false;
    bool applied = false;
    double last_ts = -1.0;
    bool causal = true;
  };
  std::map<obs::TraceId, Journey> journeys;
  bool saw_dht_hop = false;
  for (const auto& e : tracer.events()) {
    if (e.id == obs::kNoTrace) continue;
    auto& j = journeys[e.id];
    const std::string name = e.name;
    if (name == "update.send") j.sent = true;
    if (name == "net.drop") j.dropped = true;
    if (name == "net.retransmit") j.retransmitted = true;
    if (name == "update.apply") j.applied = true;
    if (name == "dht.hop") saw_dht_hop = true;
    if (e.ts_us < j.last_ts) j.causal = false;
    j.last_ts = e.ts_us;
  }
  EXPECT_TRUE(saw_dht_hop);
  std::size_t full_journeys = 0;
  for (const auto& [id, j] : journeys) {
    EXPECT_TRUE(j.causal) << "trace " << id;
    if (j.sent && j.dropped && j.retransmitted && j.applied) {
      ++full_journeys;
    }
  }
  EXPECT_GT(full_journeys, 0u)
      << "no drop->retransmit->apply journey found among "
      << journeys.size() << " traces";

  // The pass spans advance simulated time, so the trace has a timeline.
  EXPECT_GT(tracer.now_us(), 0.0);
}

TEST(ObsEngine, CrashEventsAppearInTrace) {
  const StandardExperiment exp({.num_docs = 2'000, .num_peers = 40});
  StandardExperiment::FaultRunOptions fo;
  fo.plan.crashes = {{.pass = 2, .peer = 3}};
  fo.plan.acked_delivery = true;
  fo.replicas_per_doc = 1;
  obs::Tracer tracer;
  obs::MetricsRegistry reg;
  StandardExperiment::Telemetry telemetry;
  telemetry.registry = &reg;
  telemetry.tracer = &tracer;
  const auto outcome = exp.run_distributed_faulty(fo, nullptr, telemetry);
  ASSERT_TRUE(outcome.run.converged);
  ASSERT_EQ(outcome.crashes, 1u);

  bool saw_crash = false;
  bool saw_recover = false;
  for (const auto& e : tracer.events()) {
    const std::string name = e.name;
    if (name == "peer.crash") saw_crash = true;
    if (name == "peer.recover") saw_recover = true;
  }
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_recover);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("pagerank.crashes"), 1u);
  EXPECT_FALSE(snap.series.at("pagerank.crash_events").empty());
}

}  // namespace
}  // namespace dprank
