#include "search/bloom.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace dprank {
namespace {

TEST(Bloom, NoFalseNegatives) {
  BloomFilter f(1000);
  for (std::uint64_t i = 0; i < 1000; ++i) f.insert(i * 7919);
  for (std::uint64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(f.possibly_contains(i * 7919));
  }
}

TEST(Bloom, FalsePositiveRateNearTheory) {
  BloomFilter f(5000, 8.0);
  for (std::uint64_t i = 0; i < 5000; ++i) f.insert(i);
  // Probe disjoint keys.
  int fp = 0;
  constexpr int kProbes = 20'000;
  for (int i = 0; i < kProbes; ++i) {
    if (f.possibly_contains(1'000'000ULL + static_cast<std::uint64_t>(i))) {
      ++fp;
    }
  }
  const double measured = static_cast<double>(fp) / kProbes;
  // 8 bits/item, optimal k: theory ~2.1%; allow generous slack.
  EXPECT_LT(measured, 0.05);
  EXPECT_NEAR(measured, f.expected_fpr(), 0.02);
}

TEST(Bloom, MoreBitsFewerFalsePositives) {
  auto measure = [](double bits_per_item) {
    BloomFilter f(2000, bits_per_item);
    for (std::uint64_t i = 0; i < 2000; ++i) f.insert(i);
    int fp = 0;
    for (int i = 0; i < 10'000; ++i) {
      if (f.possibly_contains(5'000'000ULL + static_cast<std::uint64_t>(i))) {
        ++fp;
      }
    }
    return fp;
  };
  EXPECT_LT(measure(12.0), measure(4.0));
}

TEST(Bloom, EmptyFilterRejectsEverything) {
  const BloomFilter f(100);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(f.possibly_contains(rng()));
  }
  EXPECT_DOUBLE_EQ(f.expected_fpr(), 0.0);
}

TEST(Bloom, ZeroExpectedItemsStillWorks) {
  BloomFilter f(0);
  f.insert(42);
  EXPECT_TRUE(f.possibly_contains(42));
  EXPECT_GE(f.bit_count(), 64u);
}

TEST(Bloom, SizingFollowsBitsPerItem) {
  const BloomFilter f(1000, 10.0);
  EXPECT_GE(f.bit_count(), 10'000u);
  EXPECT_LT(f.bit_count(), 10'000u + 64);
  EXPECT_EQ(f.byte_count(), f.bit_count() / 8);
  EXPECT_EQ(f.hash_count(), 7u);  // round(10 * ln 2)
}

}  // namespace
}  // namespace dprank
