#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "graph/graph_stats.hpp"

namespace dprank {
namespace {

TEST(Generator, Deterministic) {
  const Digraph a = paper_graph(2000, 42);
  const Digraph b = paper_graph(2000, 42);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  for (NodeId u = 0; u < a.num_nodes(); ++u) {
    const auto na = a.out_neighbors(u);
    const auto nb = b.out_neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(na.begin(), na.end()),
              std::vector<NodeId>(nb.begin(), nb.end()));
  }
}

TEST(Generator, SeedChangesGraph) {
  const Digraph a = paper_graph(2000, 1);
  const Digraph b = paper_graph(2000, 2);
  bool differs = a.num_edges() != b.num_edges();
  for (NodeId u = 0; !differs && u < a.num_nodes(); ++u) {
    const auto na = a.out_neighbors(u);
    const auto nb = b.out_neighbors(u);
    differs = std::vector<NodeId>(na.begin(), na.end()) !=
              std::vector<NodeId>(nb.begin(), nb.end());
  }
  EXPECT_TRUE(differs);
}

TEST(Generator, RejectsBadParams) {
  WebGraphParams p;
  p.num_nodes = 1;
  EXPECT_THROW(generate_web_graph(p), std::invalid_argument);
  p.num_nodes = 100;
  p.min_degree = 0;
  EXPECT_THROW(generate_web_graph(p), std::invalid_argument);
  p.min_degree = 50;
  p.max_degree = 10;
  EXPECT_THROW(generate_web_graph(p), std::invalid_argument);
}

TEST(Generator, NoSelfLoopsOrDuplicates) {
  const Digraph g = paper_graph(5000, 3);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto nbrs = g.out_neighbors(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_NE(nbrs[i], u);
      if (i > 0) ASSERT_LT(nbrs[i - 1], nbrs[i]);  // sorted, distinct
    }
  }
}

TEST(Generator, DegreesRespectCap) {
  WebGraphParams p;
  p.num_nodes = 3000;
  p.max_degree = 50;
  p.seed = 9;
  const Digraph g = generate_web_graph(p);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_LE(g.out_degree(u), 50u);
  }
}

TEST(Generator, OutDegreePowerLawSlope) {
  // Broder out-exponent 2.4: fitted log-log slope of the degree
  // histogram should be near -2.4.
  const Digraph g = paper_graph(60'000, 5);
  const auto hist = degree_histogram(g, /*out_direction=*/true, 60);
  const double slope = fit_power_law_slope(hist, 1, 20);
  EXPECT_NEAR(slope, -2.4, 0.35);
}

TEST(Generator, InDegreePowerLawSlope) {
  // In-exponent 2.1. In-degrees are multinomially sampled from the stub
  // pool, flattening the head slightly; fit over the tail.
  const Digraph g = paper_graph(60'000, 5);
  const auto hist = degree_histogram(g, /*out_direction=*/false, 80);
  const double slope = fit_power_law_slope(hist, 2, 40);
  EXPECT_NEAR(slope, -2.1, 0.45);
}

TEST(Generator, SparseLikeTheWeb) {
  const Digraph g = paper_graph(20'000, 8);
  const double avg_deg = static_cast<double>(g.num_edges()) /
                         static_cast<double>(g.num_nodes());
  // Broder-model means: out-degree ~2.2-2.6 with cap 1000.
  EXPECT_GT(avg_deg, 1.5);
  EXPECT_LT(avg_deg, 4.0);
}

TEST(Generator, DanglingFractionRespected) {
  WebGraphParams p;
  p.num_nodes = 10'000;
  p.dangling_fraction = 0.2;
  p.seed = 4;
  const Digraph g = generate_web_graph(p);
  const auto stats = compute_degree_stats(g);
  const double frac = static_cast<double>(stats.dangling_nodes) /
                      static_cast<double>(g.num_nodes());
  EXPECT_NEAR(frac, 0.2, 0.02);
}

TEST(Generator, AllDanglingRejected) {
  WebGraphParams p;
  p.num_nodes = 100;
  p.dangling_fraction = 1.0;
  EXPECT_THROW(generate_web_graph(p), std::invalid_argument);
}

TEST(Figure2Graph, MatchesThePaper) {
  const Digraph g = figure2_graph();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(g.num_edges(), 5u);
  EXPECT_EQ(g.out_degree(0), 3u);  // G links H, I, J
  EXPECT_EQ(g.out_degree(1), 2u);  // H links K, L
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 4));
  EXPECT_TRUE(g.has_edge(1, 5));
  EXPECT_EQ(g.out_degree(4), 0u);
  EXPECT_EQ(g.out_degree(5), 0u);
}

TEST(GraphStats, ReachabilityOnChain) {
  // 0 -> 1 -> 2 -> 3; node 3 reaches only itself.
  const Digraph g = Digraph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(forward_reachable_count(g, 0), 4u);
  EXPECT_EQ(forward_reachable_count(g, 2), 2u);
  EXPECT_EQ(forward_reachable_count(g, 3), 1u);
  EXPECT_EQ(forward_reachable_count(g, 0, 2), 2u);  // limit truncates
}

TEST(GraphStats, DegreeStats) {
  const Digraph g = figure2_graph();
  const auto stats = compute_degree_stats(g);
  EXPECT_EQ(stats.dangling_nodes, 4u);    // I, J, K, L
  EXPECT_EQ(stats.sourceless_nodes, 1u);  // G
  EXPECT_DOUBLE_EQ(stats.out_degree.mean(), 5.0 / 6.0);
  EXPECT_DOUBLE_EQ(stats.in_degree.mean(), 5.0 / 6.0);
}

}  // namespace
}  // namespace dprank
