// Pool/arena primitive tests (common/arena.hpp): BufferPool capacity
// retention and reuse accounting, the ASan reuse-after-recycle trap,
// ObjectPool, and EpochArray's O(1) epoch reset semantics.

#include "common/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace dprank {
namespace {

TEST(BufferPool, FirstAcquireAllocates) {
  BufferPool<int> pool;
  auto buf = pool.acquire();
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 0u);
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(BufferPool, ReleaseThenAcquireReusesCapacity) {
  BufferPool<int> pool;
  auto buf = pool.acquire();
  buf.resize(1000);
  const auto cap = buf.capacity();
  pool.release(std::move(buf));
  EXPECT_EQ(pool.idle(), 1u);

  auto again = pool.acquire();
  EXPECT_TRUE(again.empty());  // cleared...
  EXPECT_GE(again.capacity(), cap);  // ...but capacity survived
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.idle(), 0u);
}

TEST(BufferPool, LifoHandsBackMostRecentBuffer) {
  BufferPool<int> pool;
  auto a = pool.acquire();
  auto b = pool.acquire();
  a.reserve(10);
  b.reserve(2000);
  const int* b_data = b.data();
  pool.release(std::move(a));
  pool.release(std::move(b));
  auto top = pool.acquire();
  EXPECT_EQ(top.data(), b_data);  // most recently released comes back first
  EXPECT_GE(top.capacity(), 2000u);
}

TEST(BufferPool, ManyCyclesStayAtOneAllocation) {
  BufferPool<std::uint64_t> pool;
  for (int pass = 0; pass < 100; ++pass) {
    auto buf = pool.acquire();
    for (std::uint64_t i = 0; i < 256; ++i) buf.push_back(i);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.allocations(), 1u);
  EXPECT_EQ(pool.reuses(), 99u);
}

#if DPRANK_HAS_ASAN
TEST(BufferPool, ReleasedStorageIsPoisonedUntilReacquired) {
  // The lifetime contract from the header: a released buffer's storage
  // is dead, and under ASan a stale pointer into it must trap. We probe
  // with __asan_address_is_poisoned instead of dereferencing, so the
  // test asserts the trap is armed rather than crashing the runner.
  BufferPool<int> pool;
  auto buf = pool.acquire();
  buf.resize(64, 7);
  const int* stale = buf.data();
  pool.release(std::move(buf));
  EXPECT_TRUE(__asan_address_is_poisoned(stale));
  EXPECT_TRUE(__asan_address_is_poisoned(stale + 63));

  auto again = pool.acquire();
  ASSERT_EQ(again.data(), stale);  // same storage, now unpoisoned
  EXPECT_FALSE(__asan_address_is_poisoned(stale));
  again.resize(64);
  EXPECT_EQ(again[0], 0);  // and safely readable again
  pool.release(std::move(again));
}
#endif

TEST(ObjectPool, RecyclesWarmObjects) {
  ObjectPool<std::vector<std::string>> pool;
  auto obj = pool.acquire();
  EXPECT_EQ(pool.allocations(), 1u);
  obj.reserve(500);
  const auto cap = obj.capacity();
  pool.release(std::move(obj));

  auto again = pool.acquire();
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_GE(again.capacity(), cap);  // warm capacity, contents untouched
}

TEST(EpochArray, StartsLogicallyDefault) {
  EpochArray<std::uint32_t> arr(4);
  EXPECT_EQ(arr.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_FALSE(arr.fresh(i));
    EXPECT_EQ(arr.peek(i), 0u);
  }
}

TEST(EpochArray, AtRevivesPeekDoesNot) {
  EpochArray<std::uint32_t> arr(4);
  EXPECT_EQ(arr.peek(2), 0u);
  EXPECT_FALSE(arr.fresh(2));  // peek must not revive

  arr.at(2) = 9;
  EXPECT_TRUE(arr.fresh(2));
  EXPECT_EQ(arr.peek(2), 9u);
  EXPECT_FALSE(arr.fresh(1));  // neighbors untouched
}

TEST(EpochArray, AdvanceResetsEverySlotInOneStep) {
  EpochArray<std::uint32_t> arr(8);
  for (std::size_t i = 0; i < 8; ++i) arr.at(i) = static_cast<std::uint32_t>(i + 1);
  arr.advance();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(arr.fresh(i));
    EXPECT_EQ(arr.peek(i), 0u);
  }
  // First touch of the new epoch sees a default, not the stale value.
  EXPECT_EQ(arr.at(3), 0u);
  arr.at(3) = 42;
  EXPECT_EQ(arr.peek(3), 42u);
}

TEST(EpochArray, ManyEpochsAccumulateIndependently) {
  // The exchange_direct per-destination counter pattern: advance() per
  // source peer, count, read back only touched slots.
  EpochArray<std::uint32_t> counts(16);
  for (int epoch = 0; epoch < 1000; ++epoch) {
    counts.advance();
    const std::size_t a = static_cast<std::size_t>(epoch) % 16;
    const std::size_t b = (static_cast<std::size_t>(epoch) + 5) % 16;
    ++counts.at(a);
    ++counts.at(a);
    ++counts.at(b);
    EXPECT_EQ(counts.peek(a), a == b ? 3u : 2u);
    EXPECT_EQ(counts.peek(b), a == b ? 3u : 1u);
    EXPECT_EQ(counts.peek((a + 1) % 16) + counts.peek((a + 2) % 16),
              ((a + 1) % 16 == b ? 1u : 0u) + ((a + 2) % 16 == b ? 1u : 0u));
  }
}

TEST(EpochArray, ResizePreservesSemantics) {
  EpochArray<std::uint32_t> arr;
  arr.resize(2);
  arr.at(1) = 5;
  arr.resize(6);
  EXPECT_EQ(arr.size(), 6u);
  EXPECT_EQ(arr.peek(1), 5u);   // existing slot survives a grow
  EXPECT_FALSE(arr.fresh(5));   // new slots arrive stale
  EXPECT_EQ(arr.peek(5), 0u);
}

}  // namespace
}  // namespace dprank
