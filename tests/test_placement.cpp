#include "p2p/placement.hpp"

#include "graph/generator.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

namespace dprank {
namespace {

TEST(Placement, RandomCoversAllDocsWithValidPeers) {
  const auto p = Placement::random(10'000, 500, 42);
  EXPECT_EQ(p.num_docs(), 10'000u);
  EXPECT_EQ(p.num_peers(), 500u);
  for (NodeId d = 0; d < 10'000; ++d) {
    ASSERT_LT(p.peer_of(d), 500u);
  }
}

TEST(Placement, RandomIsDeterministic) {
  const auto a = Placement::random(1000, 50, 7);
  const auto b = Placement::random(1000, 50, 7);
  for (NodeId d = 0; d < 1000; ++d) {
    ASSERT_EQ(a.peer_of(d), b.peer_of(d));
  }
}

TEST(Placement, SeedChangesAssignment) {
  const auto a = Placement::random(1000, 50, 1);
  const auto b = Placement::random(1000, 50, 2);
  int diff = 0;
  for (NodeId d = 0; d < 1000; ++d) {
    if (a.peer_of(d) != b.peer_of(d)) ++diff;
  }
  EXPECT_GT(diff, 900);  // ~98% expected to differ
}

TEST(Placement, RandomIsApproximatelyBalanced) {
  const auto p = Placement::random(50'000, 500, 3);
  const auto counts = p.docs_per_peer();
  ASSERT_EQ(counts.size(), 500u);
  const auto total = std::accumulate(counts.begin(), counts.end(), 0u);
  EXPECT_EQ(total, 50'000u);
  for (const auto c : counts) {
    EXPECT_GT(c, 50u);   // mean 100, generous band
    EXPECT_LT(c, 160u);
  }
}

TEST(Placement, ZeroPeersRejected) {
  EXPECT_THROW(Placement::random(10, 0, 1), std::invalid_argument);
}

TEST(Placement, ByDhtMatchesRingOwnership) {
  ChordRing ring(32);
  const auto p = Placement::by_dht(2000, ring);
  for (NodeId d = 0; d < 2000; ++d) {
    ASSERT_EQ(p.peer_of(d), ring.successor_of_key(document_guid(d)));
  }
}

TEST(Placement, ByDhtEmptyRingRejected) {
  const ChordRing ring;
  EXPECT_THROW(Placement::by_dht(10, ring), std::invalid_argument);
}

TEST(Placement, AddDocumentExtends) {
  auto p = Placement::random(100, 10, 5);
  p.add_document(100, 7);
  EXPECT_EQ(p.num_docs(), 101u);
  EXPECT_EQ(p.peer_of(100), 7u);
}

TEST(Placement, AddDocumentValidates) {
  auto p = Placement::random(100, 10, 5);
  EXPECT_THROW(p.add_document(50, 3), std::invalid_argument);   // not next id
  EXPECT_THROW(p.add_document(100, 10), std::invalid_argument);  // bad peer
}

TEST(Placement, LinkClusteringCoversAllDocs) {
  const Digraph g = paper_graph(5000, 9);
  const auto p = Placement::by_link_clustering(g, 50, 9);
  EXPECT_EQ(p.num_docs(), 5000u);
  for (NodeId d = 0; d < 5000; ++d) {
    ASSERT_LT(p.peer_of(d), 50u);
  }
}

TEST(Placement, LinkClusteringRespectsCapacity) {
  const Digraph g = paper_graph(5000, 10);
  const auto p = Placement::by_link_clustering(g, 50, 10);
  const auto counts = p.docs_per_peer();
  for (const auto c : counts) {
    EXPECT_LE(c, 100u);  // ceil(5000/50)
  }
}

TEST(Placement, LinkClusteringIsDeterministic) {
  const Digraph g = paper_graph(2000, 11);
  const auto a = Placement::by_link_clustering(g, 20, 11);
  const auto b = Placement::by_link_clustering(g, 20, 11);
  for (NodeId d = 0; d < 2000; ++d) {
    ASSERT_EQ(a.peer_of(d), b.peer_of(d));
  }
}

TEST(Placement, LinkClusteringCutsCrossPeerEdges) {
  // The paper's future-work hypothesis: link-aware mapping alleviates
  // network overheads. BFS clustering must beat random placement on
  // cross-peer edge fraction by a clear margin.
  const Digraph g = paper_graph(10'000, 12);
  const auto random_p = Placement::random(10'000, 50, 12);
  const auto clustered = Placement::by_link_clustering(g, 50, 12);
  const double random_cut = random_p.cross_peer_edge_fraction(g);
  const double clustered_cut = clustered.cross_peer_edge_fraction(g);
  EXPECT_GT(random_cut, 0.9);  // 50 peers: ~98% of edges cross
  EXPECT_LT(clustered_cut, random_cut * 0.8);
}

TEST(Placement, LinkClusteringValidates) {
  const Digraph g = paper_graph(100, 1);
  EXPECT_THROW(Placement::by_link_clustering(g, 0, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace dprank
