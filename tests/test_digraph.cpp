#include "graph/digraph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"

namespace dprank {
namespace {

Digraph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  return Digraph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
}

TEST(Digraph, EmptyGraph) {
  const Digraph g = Digraph::from_edges(0, {});
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Digraph, NodesWithoutEdges) {
  const Digraph g = Digraph::from_edges(5, {});
  EXPECT_EQ(g.num_nodes(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(g.out_degree(v), 0u);
    EXPECT_EQ(g.in_degree(v), 0u);
    EXPECT_TRUE(g.out_neighbors(v).empty());
    EXPECT_TRUE(g.in_neighbors(v).empty());
  }
}

TEST(Digraph, BasicAdjacency) {
  const Digraph g = diamond();
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(3), 2u);
  const auto n0 = g.out_neighbors(0);
  EXPECT_EQ(std::vector<NodeId>(n0.begin(), n0.end()),
            (std::vector<NodeId>{1, 2}));
  const auto i3 = g.in_neighbors(3);
  EXPECT_EQ(std::vector<NodeId>(i3.begin(), i3.end()),
            (std::vector<NodeId>{1, 2}));
}

TEST(Digraph, DropsSelfLoopsAndDuplicates) {
  const Digraph g = Digraph::from_edges(
      3, {{0, 1}, {0, 1}, {1, 1}, {1, 2}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(1, 1));
}

TEST(Digraph, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(Digraph::from_edges(2, {{0, 2}}), std::out_of_range);
  EXPECT_THROW(Digraph::from_edges(2, {{5, 0}}), std::out_of_range);
}

TEST(Digraph, HasEdge) {
  const Digraph g = diamond();
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(2, 3));
  EXPECT_FALSE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(3, 0));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Digraph, EdgeListRoundTrip) {
  const Digraph g = diamond();
  const auto edges = g.edge_list();
  const Digraph g2 = Digraph::from_edges(4, edges);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  for (const auto& e : edges) EXPECT_TRUE(g2.has_edge(e.src, e.dst));
}

TEST(Digraph, OutEdgeIdsAreContiguous) {
  const Digraph g = diamond();
  EXPECT_EQ(g.out_edge_begin(0), 0u);
  EXPECT_EQ(g.out_edge_end(0), 2u);
  EXPECT_EQ(g.out_edge_begin(1), 2u);
  EXPECT_EQ(g.out_target(0), 1u);
  EXPECT_EQ(g.out_target(1), 2u);
  EXPECT_EQ(g.out_target(2), 3u);
}

TEST(Digraph, CrossIndexMapsInEdgesToOutSlots) {
  const Digraph g = diamond();
  // For every node v and in-position i, the out-edge id must point back
  // at an edge whose target is v and whose source is in_neighbors(v)[i].
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto sources = g.in_neighbors(v);
    const auto slots = g.in_to_out_edge(v);
    ASSERT_EQ(sources.size(), slots.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      const EdgeId e = slots[i];
      EXPECT_EQ(g.out_target(e), v);
      const NodeId u = sources[i];
      EXPECT_GE(e, g.out_edge_begin(u));
      EXPECT_LT(e, g.out_edge_end(u));
    }
  }
}

TEST(Digraph, CrossIndexOnRandomGraph) {
  Rng rng(42);
  std::vector<Edge> edges;
  const NodeId n = 200;
  for (int i = 0; i < 2000; ++i) {
    edges.push_back({static_cast<NodeId>(rng.bounded(n)),
                     static_cast<NodeId>(rng.bounded(n))});
  }
  const Digraph g = Digraph::from_edges(n, edges);
  std::uint64_t checked = 0;
  for (NodeId v = 0; v < n; ++v) {
    const auto sources = g.in_neighbors(v);
    const auto slots = g.in_to_out_edge(v);
    ASSERT_EQ(sources.size(), slots.size());
    for (std::size_t i = 0; i < sources.size(); ++i) {
      ASSERT_EQ(g.out_target(slots[i]), v);
      ASSERT_GE(slots[i], g.out_edge_begin(sources[i]));
      ASSERT_LT(slots[i], g.out_edge_end(sources[i]));
      ++checked;
    }
  }
  EXPECT_EQ(checked, g.num_edges());
}

TEST(Digraph, InNeighborsSortedBySource) {
  // The async runtime relies on in-lists being ordered by source id.
  Rng rng(7);
  std::vector<Edge> edges;
  const NodeId n = 100;
  for (int i = 0; i < 800; ++i) {
    edges.push_back({static_cast<NodeId>(rng.bounded(n)),
                     static_cast<NodeId>(rng.bounded(n))});
  }
  const Digraph g = Digraph::from_edges(n, edges);
  for (NodeId v = 0; v < n; ++v) {
    const auto srcs = g.in_neighbors(v);
    EXPECT_TRUE(std::is_sorted(srcs.begin(), srcs.end()));
  }
}

TEST(Digraph, DegreeSumsEqualEdgeCount) {
  Rng rng(11);
  std::vector<Edge> edges;
  const NodeId n = 150;
  for (int i = 0; i < 1500; ++i) {
    edges.push_back({static_cast<NodeId>(rng.bounded(n)),
                     static_cast<NodeId>(rng.bounded(n))});
  }
  const Digraph g = Digraph::from_edges(n, edges);
  std::uint64_t out_sum = 0;
  std::uint64_t in_sum = 0;
  for (NodeId v = 0; v < n; ++v) {
    out_sum += g.out_degree(v);
    in_sum += g.in_degree(v);
  }
  EXPECT_EQ(out_sum, g.num_edges());
  EXPECT_EQ(in_sum, g.num_edges());
}

}  // namespace
}  // namespace dprank
