#include "pagerank/centralized.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "graph/generator.hpp"

namespace dprank {
namespace {

constexpr double kTol = 1e-10;

TEST(Centralized, IsolatedNodesGetBaseRank) {
  const Digraph g = Digraph::from_edges(3, {});
  const auto r = centralized_pagerank(g, 0.85);
  EXPECT_TRUE(r.converged);
  for (const double rank : r.ranks) EXPECT_NEAR(rank, 0.15, kTol);
}

TEST(Centralized, TwoNodeCycleFixedPoint) {
  // 0 <-> 1: symmetric, R = (1-d) + d*R => R = 1 for every d.
  const Digraph g = Digraph::from_edges(2, {{0, 1}, {1, 0}});
  for (const double d : {0.5, 0.85, 0.99}) {
    const auto r = centralized_pagerank(g, d);
    EXPECT_TRUE(r.converged);
    EXPECT_NEAR(r.ranks[0], 1.0, 1e-8);
    EXPECT_NEAR(r.ranks[1], 1.0, 1e-8);
  }
}

TEST(Centralized, ChainHandComputed) {
  // 0 -> 1 with d = 0.85: R0 = 0.15, R1 = 0.15 + 0.85*0.15 = 0.2775.
  const Digraph g = Digraph::from_edges(2, {{0, 1}});
  const auto r = centralized_pagerank(g, 0.85);
  EXPECT_NEAR(r.ranks[0], 0.15, kTol);
  EXPECT_NEAR(r.ranks[1], 0.2775, kTol);
}

TEST(Centralized, DiamondHandComputed) {
  const Digraph g = Digraph::from_edges(4, {{0, 1}, {0, 2}, {1, 3}, {2, 3}});
  const auto r = centralized_pagerank(g, 0.85);
  EXPECT_NEAR(r.ranks[0], 0.15, kTol);
  EXPECT_NEAR(r.ranks[1], 0.15 + 0.85 * 0.075, kTol);
  EXPECT_NEAR(r.ranks[2], r.ranks[1], kTol);
  EXPECT_NEAR(r.ranks[3], 0.15 + 0.85 * 2 * r.ranks[1], kTol);
}

TEST(Centralized, FixedPointSatisfiesEquationOnWebGraph) {
  const Digraph g = paper_graph(3000, 15);
  const auto r = centralized_pagerank(g, 0.85, 1e-13);
  ASSERT_TRUE(r.converged);
  // Residual check: R = (1-d) + d*A^T R at every node.
  std::vector<double> expected(g.num_nodes());
  pagerank_sweep(g, 0.85, r.ranks, expected);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(r.ranks[v], expected[v], 1e-9) << "node " << v;
  }
}

TEST(Centralized, RanksBoundedBelowByBase) {
  const Digraph g = paper_graph(2000, 33);
  const auto r = centralized_pagerank(g, 0.85);
  for (const double rank : r.ranks) EXPECT_GE(rank, 0.15 - kTol);
}

TEST(Centralized, HigherDampingSlowsConvergence) {
  const Digraph g = paper_graph(2000, 3);
  const auto fast = centralized_pagerank(g, 0.5, 1e-10);
  const auto slow = centralized_pagerank(g, 0.95, 1e-10);
  EXPECT_TRUE(fast.converged);
  EXPECT_TRUE(slow.converged);
  EXPECT_LT(fast.iterations, slow.iterations);
}

TEST(Centralized, MaxIterationsCapRespected) {
  const Digraph g = paper_graph(2000, 3);
  const auto r = centralized_pagerank(g, 0.85, 1e-15, /*max_iterations=*/3);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations, 3u);
}

TEST(Centralized, SweepValidatesSizes) {
  const Digraph g = figure2_graph();
  std::vector<double> in(5, 1.0);  // wrong size
  std::vector<double> out(6);
  EXPECT_THROW(pagerank_sweep(g, 0.85, in, out), std::invalid_argument);
}

TEST(Centralized, DanglingMassIsNotRedistributed) {
  // Paper-faithful operator: dangling nodes absorb rank. Total mass is
  // therefore <= N (equality only if no dangling nodes).
  const Digraph g = figure2_graph();  // I, J, K, L dangle
  const auto r = centralized_pagerank(g, 0.85);
  const double total =
      std::accumulate(r.ranks.begin(), r.ranks.end(), 0.0);
  EXPECT_LT(total, 6.0);
  EXPECT_GT(total, 6.0 * 0.15);
}

TEST(CentralizedExtrapolated, MatchesPlainFixedPoint) {
  const Digraph g = paper_graph(3000, 17);
  const auto plain = centralized_pagerank(g, 0.85, 1e-12);
  const auto accel = centralized_pagerank_extrapolated(g, 0.85, 1e-12);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(accel.converged);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(accel.ranks[v], plain.ranks[v],
                1e-8 * std::max(1.0, plain.ranks[v]))
        << "node " << v;
  }
}

TEST(CentralizedExtrapolated, GainsAreMarginalOnWebGraphs) {
  // The §7 reproduction: Kamvar et al.-style extrapolation barely moves
  // the needle on web-like graphs (we measure ~97 vs ~100 sweeps),
  // because the damped operator's spectrum is dense near d — there is
  // no single dominant error mode to annihilate. This is precisely the
  // regime where the paper conjectures the asynchronous iteration "may
  // converge more rapidly than the acceleration methods studied in
  // [14]". The extrapolated solver must stay within a small constant of
  // plain power iteration (no blowup) while reaching the same answer.
  const Digraph g = paper_graph(5000, 18);
  const auto plain = centralized_pagerank(g, 0.85, 1e-10);
  const auto accel = centralized_pagerank_extrapolated(g, 0.85, 1e-10);
  ASSERT_TRUE(plain.converged);
  ASSERT_TRUE(accel.converged);
  EXPECT_LE(accel.iterations, plain.iterations + plain.iterations / 6);
}

TEST(CentralizedExtrapolated, ValidatesPeriod) {
  const Digraph g = figure2_graph();
  EXPECT_THROW(centralized_pagerank_extrapolated(g, 0.85, 1e-10, 100, 2),
               std::invalid_argument);
}

TEST(Centralized, InitialRankDoesNotChangeFixedPoint) {
  const Digraph g = paper_graph(1000, 5);
  const auto a = centralized_pagerank(g, 0.85, 1e-13, 100'000, 1.0);
  const auto b = centralized_pagerank(g, 0.85, 1e-13, 100'000, 7.0);
  ASSERT_TRUE(a.converged);
  ASSERT_TRUE(b.converged);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_NEAR(a.ranks[v], b.ranks[v], 1e-7);
  }
}

}  // namespace
}  // namespace dprank
