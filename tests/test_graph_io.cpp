#include "graph/graph_io.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "graph/generator.hpp"

namespace dprank {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("dprank_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

TEST_F(GraphIoTest, RoundTrip) {
  const Digraph g = paper_graph(2000, 77);
  const auto path = dir_ / "g.dpg";
  save_graph(g, path);
  const Digraph loaded = load_graph(path);
  ASSERT_EQ(loaded.num_nodes(), g.num_nodes());
  ASSERT_EQ(loaded.num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto a = g.out_neighbors(u);
    const auto b = loaded.out_neighbors(u);
    ASSERT_EQ(std::vector<NodeId>(a.begin(), a.end()),
              std::vector<NodeId>(b.begin(), b.end()));
  }
}

TEST_F(GraphIoTest, EmptyGraphRoundTrip) {
  const Digraph g = Digraph::from_edges(3, {});
  const auto path = dir_ / "empty.dpg";
  save_graph(g, path);
  const Digraph loaded = load_graph(path);
  EXPECT_EQ(loaded.num_nodes(), 3u);
  EXPECT_EQ(loaded.num_edges(), 0u);
}

TEST_F(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(load_graph(dir_ / "nope.dpg"), std::runtime_error);
}

TEST_F(GraphIoTest, BadMagicThrows) {
  const auto path = dir_ / "junk.dpg";
  std::ofstream(path) << "this is not a graph file at all.............";
  EXPECT_THROW(load_graph(path), std::runtime_error);
}

TEST_F(GraphIoTest, TruncatedFileThrows) {
  const Digraph g = paper_graph(500, 1);
  const auto path = dir_ / "trunc.dpg";
  save_graph(g, path);
  const auto full_size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, full_size / 2);
  EXPECT_THROW(load_graph(path), std::runtime_error);
}

TEST_F(GraphIoTest, LoadOrBuildBuildsOnceThenLoads) {
  const auto path = dir_ / "cache.dpg";
  int builds = 0;
  auto make = [&] {
    ++builds;
    return paper_graph(300, 5);
  };
  const Digraph a = load_or_build(path, make);
  const Digraph b = load_or_build(path, make);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace dprank
