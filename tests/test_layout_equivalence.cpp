// Layout and kernel equivalence (ROADMAP item 4).
//
// The compact graph layout (32-bit out_to_in_ cross index, float inverse
// out-degrees) and the vectorized fold kernel are pure representation
// changes: the engine's observable behavior — ranks, the full pass
// history, the traffic ledger, the outbox peak — must be BIT-IDENTICAL
// to the wide layout and the scalar kernel. These tests pin that, the
// 2^32 selection boundary of the narrow cross index, and (negatively)
// that the graph validator actually catches a corrupted compact index.

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "common/contracts.hpp"
#include "common/simd.hpp"
#include "graph/digraph.hpp"
#include "graph/generator.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/distributed_engine.hpp"

namespace dprank {

// Friend of Digraph; plants exactly one inconsistency per negative test.
struct TestCorruptor {
  static void corrupt_narrow_cross_entry(Digraph& g) {
    // One narrow cross-index slot stops being the inverse of in_to_out_.
    g.out_to_in32_[0] ^= 1u;
  }
  static void mismatch_cross_width(Digraph& g) {
    // Claim the wide layout while only the narrow array is populated.
    g.cross_index_narrow_ = false;
  }
};

namespace {

constexpr NodeId kDocs = 2'000;
constexpr PeerId kPeers = 40;

class Fnv {
 public:
  void mix(const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ULL;
    }
  }
  template <typename T>
  void mix_value(const T& v) {
    mix(&v, sizeof(v));
  }
  [[nodiscard]] std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 14695981039346656037ULL;
};

/// Same observables as test_scheduler's golden digest: any layout- or
/// kernel-induced difference in ranks, pass history or traffic flips it.
std::uint64_t digest_run(const Digraph& g, std::uint64_t seed,
                         std::uint32_t threads, double availability) {
  const auto placement = Placement::random(kDocs, kPeers, seed);
  PagerankOptions o;
  o.epsilon = 1e-3;
  o.threads = threads;
  DistributedPagerank engine(g, placement, o);
  DistributedRunResult run;
  if (availability < 1.0) {
    ChurnSchedule churn(kPeers, availability, seed);
    run = engine.run(&churn);
  } else {
    run = engine.run();
  }
  Fnv f;
  f.mix_value(run.passes);
  f.mix_value(run.converged);
  f.mix(engine.ranks().data(), engine.ranks().size() * sizeof(double));
  for (const PassStats& s : engine.pass_history()) {
    f.mix_value(s.pass);
    f.mix_value(s.docs_recomputed);
    f.mix_value(s.messages_sent);
    f.mix_value(s.messages_deferred);
    f.mix_value(s.messages_delivered_late);
    f.mix_value(s.local_updates);
    f.mix_value(s.max_peer_messages);
    f.mix_value(s.max_rel_change);
  }
  const TrafficMeter& t = engine.traffic();
  f.mix_value(t.messages());
  f.mix_value(t.local_updates());
  f.mix_value(t.bytes());
  f.mix_value(t.resends());
  f.mix_value(t.hop_transmissions());
  f.mix_value(engine.outbox_peak());
  return f.value();
}

/// The same graph in the legacy wide layout.
Digraph wide_copy(const Digraph& g) {
  return Digraph::from_edges(g.num_nodes(), g.edge_list(),
                             Digraph::CrossIndexWidth::kForceWide);
}

class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level) {
    simd::force_level_for_test(level);
  }
  ~ScopedSimdLevel() { simd::reset_level_for_test(); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;
};

// ---- layout equivalence ----------------------------------------------

TEST(LayoutEquivalence, NarrowAndWideBitIdentical) {
  for (const std::uint64_t seed : {7ULL, 42ULL}) {
    const Digraph narrow = paper_graph(kDocs, seed);
    ASSERT_NE(narrow.out_to_in32_data(), nullptr)
        << "paper graph should auto-select the narrow cross index";
    const Digraph wide = wide_copy(narrow);
    ASSERT_EQ(wide.out_to_in32_data(), nullptr);
    ASSERT_EQ(wide.num_edges(), narrow.num_edges());
    for (const std::uint32_t threads : {1U, 4U}) {
      for (const double availability : {1.0, 0.85}) {
        EXPECT_EQ(digest_run(narrow, seed, threads, availability),
                  digest_run(wide, seed, threads, availability))
            << "seed=" << seed << " threads=" << threads
            << " availability=" << availability;
      }
    }
  }
}

TEST(LayoutEquivalence, SimdAndScalarBitIdentical) {
  for (const std::uint64_t seed : {7ULL, 42ULL}) {
    const Digraph g = paper_graph(kDocs, seed);
    for (const std::uint32_t threads : {1U, 4U}) {
      std::uint64_t active = 0;
      std::uint64_t scalar = 0;
      {
        const ScopedSimdLevel pin(simd::active_level());
        active = digest_run(g, seed, threads, 1.0);
      }
      {
        const ScopedSimdLevel pin(simd::Level::kScalar);
        scalar = digest_run(g, seed, threads, 1.0);
      }
      EXPECT_EQ(active, scalar)
          << "seed=" << seed << " threads=" << threads << " level="
          << simd::level_name(simd::active_level());
    }
  }
}

// ---- fold kernel ------------------------------------------------------

// Direct kernel equivalence on a degree-skewed CSR: exercises the
// refill path (lanes retiring at different times), the scalar drain of
// in-flight lanes, empty documents, and a sub-lane-count tail.
TEST(FoldKernel, VectorMatchesScalarBitwise) {
  if (simd::active_level() == simd::Level::kScalar) {
    GTEST_SKIP() << "no vector level available on this host";
  }
  // Degrees cycle through 0..16 — poor man's power law with empties.
  constexpr NodeId kNodes = 257;
  std::vector<std::uint64_t> offsets(kNodes + 1, 0);
  for (NodeId v = 0; v < kNodes; ++v) {
    offsets[v + 1] = offsets[v] + (v * 7) % 17;
  }
  const std::uint64_t m = offsets[kNodes];
  std::vector<double> cells(m);
  for (std::uint64_t c = 0; c < m; ++c) {
    cells[c] = 1.0 / (1.0 + static_cast<double>(c % 97));
  }
  std::vector<NodeId> docs(kNodes);
  std::iota(docs.begin(), docs.end(), NodeId{0});
  for (const std::size_t count :
       {std::size_t{0}, std::size_t{1}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{kNodes}}) {
    std::vector<double> ref(count + 1, -1.0);
    std::vector<double> vec(count + 1, -1.0);
    simd::fold_cells(simd::Level::kScalar, cells.data(), offsets.data(),
                     docs.data(), count, ref.data());
    simd::fold_cells(simd::active_level(), cells.data(), offsets.data(),
                     docs.data(), count, vec.data());
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(ref[i], vec[i]) << "doc " << i << " of " << count;
    }
    EXPECT_EQ(vec[count], -1.0) << "kernel wrote past count=" << count;
  }
}

// ---- narrow cross-index selection boundary ----------------------------

TEST(NarrowCrossIndex, SelectionBoundaryAtTwoToThe32) {
  static_assert(Digraph::narrow_cross_index_allowed(0));
  static_assert(
      Digraph::narrow_cross_index_allowed((EdgeId{1} << 32) - 1));
  static_assert(!Digraph::narrow_cross_index_allowed(EdgeId{1} << 32));
  static_assert(
      !Digraph::narrow_cross_index_allowed((EdgeId{1} << 32) + 1));
  // Runtime spot checks of the same predicate (static_assert already
  // proved them; these keep the test visible in the runner output).
  EXPECT_TRUE(Digraph::narrow_cross_index_allowed((EdgeId{1} << 32) - 1));
  EXPECT_FALSE(Digraph::narrow_cross_index_allowed(EdgeId{1} << 32));
}

// ---- negative contract tests ------------------------------------------

#define SKIP_WITHOUT_CONTRACTS()                                          \
  if (!contracts::enabled()) {                                            \
    GTEST_SKIP() << "contracts compiled out (DPRANK_CHECK_INVARIANTS "    \
                    "off)";                                               \
  }

template <typename Fn>
void expect_violation(const char* subsystem, Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    FAIL() << "expected ContractViolation from subsystem " << subsystem;
  } catch (const contracts::ContractViolation& v) {
    EXPECT_EQ(v.subsystem(), subsystem) << v.what();
    EXPECT_FALSE(v.expression().empty());
    EXPECT_NE(v.line(), 0);
  }
}

TEST(LayoutNegative, ValidatorCatchesCorruptNarrowCrossEntry) {
  SKIP_WITHOUT_CONTRACTS();
  Digraph g = paper_graph(200, 3);
  ASSERT_NE(g.out_to_in32_data(), nullptr);
  g.validate();  // healthy before the corruption
  TestCorruptor::corrupt_narrow_cross_entry(g);
  expect_violation("graph", [&] { g.validate(); });
}

TEST(LayoutNegative, ValidatorCatchesCrossWidthMismatch) {
  SKIP_WITHOUT_CONTRACTS();
  Digraph g = paper_graph(200, 3);
  g.validate();
  TestCorruptor::mismatch_cross_width(g);
  expect_violation("graph", [&] { g.validate(); });
}

}  // namespace
}  // namespace dprank
