#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <vector>

namespace dprank {
namespace {

TEST(SplitMix, DeterministicSequence) {
  std::uint64_t s1 = 123;
  std::uint64_t s2 = 123;
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
  EXPECT_EQ(s1, s2);
}

TEST(SplitMix, Mix64IsStateless) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ZeroSeedIsValid) {
  Rng r(0);
  // The all-zero state is a fixed point of xoshiro; seeding through
  // SplitMix64 must avoid it.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(r());
  EXPECT_GT(values.size(), 30u);
}

TEST(Rng, BoundedStaysInRange) {
  Rng r(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(r.bounded(bound), bound);
    }
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  Rng r(5);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.bounded(1), 0u);
}

TEST(Rng, BoundedIsApproximatelyUniform) {
  Rng r(31337);
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kDraws = 100'000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[r.bounded(kBuckets)];
  // Chi-squared with 9 dof; 99.9% critical value ~27.9.
  double chi2 = 0;
  const double expected = static_cast<double>(kDraws) / kBuckets;
  for (const int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 27.9);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(17);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, UniformRange) {
  Rng r(18);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, ChanceEdgeCases) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(Rng, ChanceFrequency) {
  Rng r(20);
  int hits = 0;
  for (int i = 0; i < 50'000; ++i) {
    if (r.chance(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 50'000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependence) {
  Rng parent(77);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(3);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  r.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng r(4);
  std::vector<int> empty;
  r.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  r.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(8);
  for (std::uint64_t n : {10ULL, 100ULL, 1000ULL}) {
    for (std::uint64_t k : {1ULL, 5ULL, 9ULL}) {
      const auto sample = r.sample_without_replacement(n, k);
      ASSERT_EQ(sample.size(), k);
      std::set<std::uint64_t> distinct(sample.begin(), sample.end());
      EXPECT_EQ(distinct.size(), k);
      for (const auto x : sample) EXPECT_LT(x, n);
    }
  }
}

TEST(Rng, SampleWithoutReplacementFullRange) {
  Rng r(9);
  const auto sample = r.sample_without_replacement(20, 20);
  ASSERT_EQ(sample.size(), 20u);
  std::set<std::uint64_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 20u);
}

TEST(Rng, SampleWithoutReplacementKGreaterThanN) {
  Rng r(10);
  const auto sample = r.sample_without_replacement(5, 100);
  EXPECT_EQ(sample.size(), 5u);
}

TEST(Rng, SampleCoversRangeUniformly) {
  // Every index should be sampled with roughly equal frequency.
  Rng r(11);
  constexpr std::uint64_t n = 50;
  std::vector<int> counts(n, 0);
  for (int trial = 0; trial < 2000; ++trial) {
    for (const auto x : r.sample_without_replacement(n, 10)) ++counts[x];
  }
  // Expected 400 hits per index.
  for (const int c : counts) {
    EXPECT_GT(c, 280);
    EXPECT_LT(c, 520);
  }
}

}  // namespace
}  // namespace dprank
