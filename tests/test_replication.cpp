#include "p2p/replication.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

PagerankOptions opts(double eps) {
  PagerankOptions o;
  o.epsilon = eps;
  return o;
}

TEST(ReplicaRegistry, EmptyByDefault) {
  const ReplicaRegistry reg(100);
  EXPECT_TRUE(reg.empty());
  EXPECT_EQ(reg.total_replicas(), 0u);
  EXPECT_EQ(reg.num_docs(), 100u);
}

TEST(ReplicaRegistry, UniformPlacesExactCounts) {
  const auto placement = Placement::random(500, 20, 3);
  const auto reg = ReplicaRegistry::uniform(placement, 2, 3);
  EXPECT_EQ(reg.total_replicas(), 500u * 2);
  for (NodeId d = 0; d < 500; ++d) {
    const auto reps = reg.replicas_of(d);
    ASSERT_EQ(reps.size(), 2u);
    std::set<PeerId> distinct(reps.begin(), reps.end());
    EXPECT_EQ(distinct.size(), 2u);
    for (const PeerId p : reps) {
      EXPECT_NE(p, placement.peer_of(d));  // never on the primary
      EXPECT_LT(p, 20u);
    }
  }
}

TEST(ReplicaRegistry, UniformRejectsTooManyReplicas) {
  const auto placement = Placement::random(10, 3, 1);
  EXPECT_THROW(ReplicaRegistry::uniform(placement, 3, 1),
               std::invalid_argument);
}

TEST(ReplicaRegistry, PopularityReplicatesOnlyHotDocs) {
  const auto placement = Placement::random(1000, 20, 5);
  std::vector<double> scores(1000);
  for (std::size_t i = 0; i < 1000; ++i) {
    scores[i] = static_cast<double>(i);  // doc 999 hottest
  }
  const auto reg =
      ReplicaRegistry::popularity(placement, scores, 0.1, 3, 5);
  EXPECT_EQ(reg.total_replicas(), 100u * 3);
  EXPECT_EQ(reg.replicas_of(999).size(), 3u);  // hot
  EXPECT_EQ(reg.replicas_of(0).size(), 0u);    // cold
}

TEST(ReplicaRegistry, PopularityValidates) {
  const auto placement = Placement::random(10, 5, 1);
  const std::vector<double> scores(10, 1.0);
  EXPECT_THROW(
      ReplicaRegistry::popularity(placement, {1.0}, 0.5, 1, 1),
      std::invalid_argument);
  EXPECT_THROW(
      ReplicaRegistry::popularity(placement, scores, 1.5, 1, 1),
      std::invalid_argument);
  EXPECT_THROW(
      ReplicaRegistry::popularity(placement, scores, 0.5, 5, 1),
      std::invalid_argument);
}

TEST(EngineReplication, ReplicationMultipliesMessages) {
  const Digraph g = paper_graph(2000, 7);
  const auto placement = Placement::random(2000, 50, 7);

  DistributedPagerank plain(g, placement, opts(1e-3));
  ASSERT_TRUE(plain.run().converged);

  const auto reg = ReplicaRegistry::uniform(placement, 2, 7);
  DistributedPagerank replicated(g, placement, opts(1e-3));
  replicated.attach_replicas(reg);
  ASSERT_TRUE(replicated.run().converged);

  EXPECT_GT(replicated.replica_messages(), 0u);
  // Two replicas per document: every cross-peer update fans out to ~2
  // additional destinations, tripling traffic give or take the replicas
  // that land on the sender's own peer.
  const double ratio =
      static_cast<double>(replicated.traffic().messages()) /
      static_cast<double>(plain.traffic().messages());
  EXPECT_GT(ratio, 2.5);
  EXPECT_LT(ratio, 3.2);
  // The ranks themselves are unchanged — replication is pure fan-out.
  EXPECT_LT(summarize_quality(replicated.ranks(), plain.ranks()).max, 1e-12);
}

TEST(EngineReplication, StaleSkipsUnderChurn) {
  const Digraph g = paper_graph(1000, 8);
  const auto placement = Placement::random(1000, 20, 8);
  const auto reg = ReplicaRegistry::uniform(placement, 1, 8);
  ChurnSchedule churn(20, 0.5, 8);
  DistributedPagerank engine(g, placement, opts(1e-3));
  engine.attach_replicas(reg);
  ASSERT_TRUE(engine.run(&churn).converged);
  EXPECT_GT(engine.replica_stale_skips(), 0u);
}

TEST(EngineReplication, AttachValidates) {
  const Digraph g = figure2_graph();
  const auto placement = Placement::random(6, 3, 1);
  const ReplicaRegistry wrong(5);
  DistributedPagerank engine(g, placement, opts(1e-3));
  EXPECT_THROW(engine.attach_replicas(wrong), std::invalid_argument);
}

TEST(EngineOverlay, HopMeteringWithCacheApproachesOneHop) {
  const Digraph g = paper_graph(2000, 9);
  const auto placement = Placement::random(2000, 50, 9);
  const ChordRing ring(50);

  IpCache cache(true);
  DistributedPagerank cached(g, placement, opts(1e-3));
  cached.attach_overlay(ring, cache);
  ASSERT_TRUE(cached.run().converged);

  IpCache no_cache(false);
  DistributedPagerank routed(g, placement, opts(1e-3));
  routed.attach_overlay(ring, no_cache);
  ASSERT_TRUE(routed.run().converged);

  // Same protocol, same messages; only the hop bill differs.
  EXPECT_EQ(cached.traffic().messages(), routed.traffic().messages());
  EXPECT_LT(cached.traffic().hop_transmissions(),
            routed.traffic().hop_transmissions());
  // With caching, amortized hops/message approaches 1; without, it
  // stays near the overlay's routing cost (> 2 for 50 peers).
  const double cached_ratio =
      static_cast<double>(cached.traffic().hop_transmissions()) /
      static_cast<double>(cached.traffic().messages());
  const double routed_ratio =
      static_cast<double>(routed.traffic().hop_transmissions()) /
      static_cast<double>(routed.traffic().messages());
  EXPECT_LT(cached_ratio, 2.0);
  EXPECT_GT(routed_ratio, 2.0);
}

TEST(EngineOverlay, NoOverlayBillsOneHopPerMessage) {
  const Digraph g = paper_graph(1000, 10);
  const auto placement = Placement::random(1000, 20, 10);
  DistributedPagerank engine(g, placement, opts(1e-3));
  ASSERT_TRUE(engine.run().converged);
  EXPECT_EQ(engine.traffic().hop_transmissions(),
            engine.traffic().messages());
}

TEST(EngineOverlay, AttachValidatesRingSize) {
  const Digraph g = figure2_graph();
  const auto placement = Placement::random(6, 3, 1);
  const ChordRing ring(5);  // 5 != 3 peers
  IpCache cache(true);
  DistributedPagerank engine(g, placement, opts(1e-3));
  EXPECT_THROW(engine.attach_overlay(ring, cache), std::invalid_argument);
}

TEST(EngineOverlay, AttachAfterRunRejected) {
  const Digraph g = figure2_graph();
  const auto placement = Placement::random(6, 3, 1);
  const ChordRing ring(3);
  IpCache cache(true);
  const ReplicaRegistry reg(6);
  DistributedPagerank engine(g, placement, opts(1e-3));
  (void)engine.run();
  EXPECT_THROW(engine.attach_overlay(ring, cache), std::logic_error);
  EXPECT_THROW(engine.attach_replicas(reg), std::logic_error);
}

}  // namespace
}  // namespace dprank
