// Negative tests for the invariant-contract layer (contracts.hpp).
//
// Each validated subsystem gets a deliberate corruption of its private
// state through TestCorruptor (a friend of every validated class), and
// the test asserts that the *right* validator catches it — the thrown
// ContractViolation must name the owning subsystem. A validator that
// only passes on healthy structures proves nothing; these tests prove
// each one can actually fail.
//
// The positive half runs the distributed engine with
// validate_every_n_passes=1 across clean / churn / crash-fault
// configurations at 1 and 4 threads: the full invariant walk at every
// pass boundary must never fire on a correct run.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/contracts.hpp"
#include "dht/ring.hpp"
#include "fault/fault_plan.hpp"
#include "graph/digraph.hpp"
#include "graph/generator.hpp"
#include "graph/mutable_digraph.hpp"
#include "net/outbox.hpp"
#include "net/reliable_channel.hpp"
#include "p2p/churn.hpp"
#include "p2p/placement.hpp"
#include "pagerank/distributed_engine.hpp"

namespace dprank {

// Friend of every validated class; reaches into private state to plant
// exactly one inconsistency per test.
struct TestCorruptor {
  static void corrupt_csr_target(Digraph& g) {
    // Redirect edge 0 in the out-CSR only: the in-CSR mirror and the
    // in_to_out_ cross index now disagree with it.
    g.out_targets_[0] = (g.out_targets_[0] + 1) % g.num_nodes();
  }
  static void corrupt_adjacency_mirror(MutableDigraph& g) {
    // An out-entry with no in-mirror (a half-written edge).
    g.out_[0].push_back(1);
  }
  static void corrupt_edge_count(MutableDigraph& g) { ++g.num_edges_; }
  static void corrupt_ring_index(ChordRing& ring) {
    // Swap two peers' GUIDs in the reverse index only: by_id_ and
    // guid_of_peer_ stop being inverse bijections, and every finger
    // computed through id_of() goes stale.
    auto a = ring.guid_of_peer_.begin();
    auto b = std::next(a);
    std::swap(a->second, b->second);
  }
  static void drop_outbox_credit(Outbox& box) {
    // A store that was never accounted: the conservation ledger
    // stored == pending + drained + superseded + evicted breaks.
    --box.stored_;
  }
  static void inflate_outbox_pending(Outbox& box) { ++box.total_pending_; }
  static void corrupt_channel_seq(ReliableChannel& ch) {
    // Receiver claims to have applied a fresher value than the sender
    // ever issued on the slot.
    bool done = false;
    ch.edges_.for_each(
        [&](std::uint64_t, ReliableChannel::EdgeRecord& record) {
          if (done || record.issued == 0) return;
          record.applied = record.issued + 1;
          done = true;
        });
  }
  static void corrupt_dirty_set(DistributedPagerank& engine) {
    // Queue a document without flagging it: the dedup flag array and
    // the queue no longer agree (the parallel-merge precondition).
    engine.dirty_.push_back(0);
  }
  static void leak_rank_mass(DistributedPagerank& engine) {
    // Inflate one stored contribution: the MassAuditor ledger no longer
    // balances against the applied + parked values.
    engine.contrib_[0] += 0.25;
  }
};

namespace {

using contracts::ContractViolation;

// EXPECT_THROW cannot inspect the exception; this asserts both the type
// and that the violation names the expected subsystem.
template <typename Fn>
void expect_violation(const char* subsystem, Fn&& fn) {
  try {
    std::forward<Fn>(fn)();
    FAIL() << "expected ContractViolation from subsystem " << subsystem;
  } catch (const ContractViolation& v) {
    EXPECT_EQ(v.subsystem(), subsystem) << v.what();
    EXPECT_FALSE(v.expression().empty());
    EXPECT_NE(v.line(), 0);
  }
}

#define SKIP_WITHOUT_CONTRACTS()                                          \
  if (!contracts::enabled()) {                                            \
    GTEST_SKIP() << "contracts compiled out (DPRANK_CHECK_INVARIANTS "    \
                    "off)";                                               \
  }

TEST(ValidatorNegative, DigraphCatchesCorruptCsrMirror) {
  SKIP_WITHOUT_CONTRACTS();
  Digraph g = paper_graph(100, 3);
  g.validate();  // healthy before the corruption
  TestCorruptor::corrupt_csr_target(g);
  expect_violation("graph", [&] { g.validate(); });
}

TEST(ValidatorNegative, MutableDigraphCatchesBrokenMirror) {
  SKIP_WITHOUT_CONTRACTS();
  MutableDigraph g(paper_graph(100, 5));
  g.validate();
  TestCorruptor::corrupt_adjacency_mirror(g);
  expect_violation("graph", [&] { g.validate(); });
}

TEST(ValidatorNegative, MutableDigraphCatchesWrongEdgeCount) {
  SKIP_WITHOUT_CONTRACTS();
  MutableDigraph g(paper_graph(100, 5));
  TestCorruptor::corrupt_edge_count(g);
  expect_violation("graph", [&] { g.validate(); });
}

TEST(ValidatorNegative, RingCatchesBrokenFingerIndex) {
  SKIP_WITHOUT_CONTRACTS();
  ChordRing ring(32);
  ring.validate();
  TestCorruptor::corrupt_ring_index(ring);
  expect_violation("dht", [&] { ring.validate(); });
}

TEST(ValidatorNegative, OutboxCatchesDroppedCredit) {
  SKIP_WITHOUT_CONTRACTS();
  Outbox box;
  box.store(3, 10, PagerankUpdate{document_guid(1), 0.5});
  box.store(3, 11, PagerankUpdate{document_guid(2), 0.7});
  box.validate();
  TestCorruptor::drop_outbox_credit(box);
  expect_violation("net", [&] { box.validate(); });
}

TEST(ValidatorNegative, OutboxCatchesPendingMiscount) {
  SKIP_WITHOUT_CONTRACTS();
  Outbox box;
  box.store(1, 7, PagerankUpdate{document_guid(1), 0.1});
  TestCorruptor::inflate_outbox_pending(box);
  expect_violation("net", [&] { box.validate(); });
}

TEST(ValidatorNegative, ChannelCatchesSeqRegression) {
  SKIP_WITHOUT_CONTRACTS();
  ReliableChannel ch;
  const auto seq = ch.next_seq(/*slot=*/42);
  EXPECT_TRUE(ch.accept(42, seq));
  ch.validate();
  TestCorruptor::corrupt_channel_seq(ch);
  expect_violation("net", [&] { ch.validate(); });
}

TEST(ValidatorNegative, EngineCatchesCorruptDirtySet) {
  SKIP_WITHOUT_CONTRACTS();
  const Digraph g = paper_graph(300, 7);
  const auto p = Placement::random(300, 10, 7);
  PagerankOptions opts;
  opts.validate_every_n_passes = 1;
  DistributedPagerank engine(g, p, opts);
  ASSERT_TRUE(engine.run().converged);
  engine.validate_state();  // healthy after the run
  TestCorruptor::corrupt_dirty_set(engine);
  expect_violation("pagerank", [&] { engine.validate_state(); });
}

TEST(ValidatorNegative, EngineCatchesLeakedRankMass) {
  SKIP_WITHOUT_CONTRACTS();
  const Digraph g = paper_graph(300, 9);
  const auto p = Placement::random(300, 10, 9);
  PagerankOptions opts;
  opts.validate_every_n_passes = 1;  // creates the audit ledger
  DistributedPagerank engine(g, p, opts);
  ASSERT_TRUE(engine.run().converged);
  engine.validate_state();
  TestCorruptor::leak_rank_mass(engine);
  expect_violation("pagerank", [&] { engine.validate_state(); });
}

// ---- positive: the full walk never fires on correct runs ----

class ValidatorPositive : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ValidatorPositive, CleanRunPassesEveryPass) {
  SKIP_WITHOUT_CONTRACTS();
  const Digraph g = paper_graph(1000, 11);
  const auto p = Placement::random(1000, 20, 11);
  PagerankOptions opts;
  opts.threads = GetParam();
  opts.validate_every_n_passes = 1;
  DistributedPagerank engine(g, p, opts);
  EXPECT_TRUE(engine.run().converged);
}

TEST_P(ValidatorPositive, ChurnRunPassesEveryPass) {
  SKIP_WITHOUT_CONTRACTS();
  const Digraph g = paper_graph(1000, 13);
  const auto p = Placement::random(1000, 20, 13);
  PagerankOptions opts;
  opts.threads = GetParam();
  opts.validate_every_n_passes = 1;
  ChurnSchedule churn(20, 0.75, 13);
  DistributedPagerank engine(g, p, opts);
  EXPECT_TRUE(engine.run(&churn).converged);
}

TEST_P(ValidatorPositive, CrashFaultRunPassesEveryPass) {
  SKIP_WITHOUT_CONTRACTS();
  const Digraph g = paper_graph(1000, 17);
  const auto p = Placement::random(1000, 20, 17);
  PagerankOptions opts;
  opts.threads = GetParam();
  opts.validate_every_n_passes = 1;
  FaultPlan plan({.drop_probability = 0.05,
                  .crashes = {{.pass = 2, .peer = 3}, {.pass = 4, .peer = 7}},
                  .ack_timeout_passes = 1,
                  .seed = 17});
  DistributedPagerank engine(g, p, opts);
  engine.attach_fault_plan(plan);
  engine.enable_mass_audit();
  const auto run = engine.run();
  EXPECT_TRUE(run.converged);
  EXPECT_NEAR(run.mass_ratio, 1.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Threads, ValidatorPositive,
                         ::testing::Values(1u, 4u));

}  // namespace
}  // namespace dprank
