#include "common/uint128.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <unordered_set>

#include "common/rng.hpp"

namespace dprank {
namespace {

TEST(U128, ComparisonOrdersHiThenLo) {
  EXPECT_LT(U128(0, 5), U128(0, 6));
  EXPECT_LT(U128(0, ~0ULL), U128(1, 0));
  EXPECT_GT(U128(2, 0), U128(1, ~0ULL));
  EXPECT_EQ(U128(3, 4), U128(3, 4));
}

TEST(U128, AdditionCarries) {
  const U128 a(0, ~0ULL);
  const U128 one(0, 1);
  EXPECT_EQ(a + one, U128(1, 0));
  EXPECT_EQ(U128::max() + one, U128(0, 0));  // wraps mod 2^128
}

TEST(U128, SubtractionBorrows) {
  EXPECT_EQ(U128(1, 0) - U128(0, 1), U128(0, ~0ULL));
  EXPECT_EQ(U128(0, 0) - U128(0, 1), U128::max());  // wraps
  EXPECT_EQ(U128(5, 7) - U128(5, 7), U128(0, 0));
}

TEST(U128, AdditionSubtractionRoundTrip) {
  Rng rng(2024);
  for (int i = 0; i < 1000; ++i) {
    const U128 a(rng(), rng());
    const U128 b(rng(), rng());
    EXPECT_EQ((a + b) - b, a);
    EXPECT_EQ((a - b) + b, a);
  }
}

TEST(U128, ShiftLeft) {
  EXPECT_EQ(U128(0, 1) << 0, U128(0, 1));
  EXPECT_EQ(U128(0, 1) << 1, U128(0, 2));
  EXPECT_EQ(U128(0, 1) << 64, U128(1, 0));
  EXPECT_EQ(U128(0, 1) << 127, U128(1ULL << 63, 0));
  EXPECT_EQ(U128(0, 0xFF) << 60, U128(0xF, 0xF000000000000000ULL));
}

TEST(U128, ShiftRight) {
  EXPECT_EQ(U128(1, 0) >> 64, U128(0, 1));
  EXPECT_EQ(U128(1ULL << 63, 0) >> 127, U128(0, 1));
  EXPECT_EQ(U128(0xF, 0xF000000000000000ULL) >> 60, U128(0, 0xFF));
}

TEST(U128, ShiftRoundTrip) {
  Rng rng(7);
  for (int k = 0; k < 128; ++k) {
    const U128 v(0, rng() | 1);
    const U128 shifted = v << k;
    // Shifting back recovers the low bits that survived.
    if (k == 0) EXPECT_EQ(shifted >> k, v);
  }
}

TEST(U128, Pow2) {
  EXPECT_EQ(U128::pow2(0), U128(0, 1));
  EXPECT_EQ(U128::pow2(63), U128(0, 1ULL << 63));
  EXPECT_EQ(U128::pow2(64), U128(1, 0));
  EXPECT_EQ(U128::pow2(127), U128(1ULL << 63, 0));
  // Powers of two sum correctly: 2^k + 2^k = 2^(k+1).
  for (int k = 0; k < 127; ++k) {
    EXPECT_EQ(U128::pow2(k) + U128::pow2(k), U128::pow2(k + 1));
  }
}

TEST(U128, BitwiseOps) {
  const U128 a(0xF0F0, 0x1234);
  const U128 b(0x0FF0, 0x5678);
  EXPECT_EQ(a & b, U128(0x00F0, 0x1230));
  EXPECT_EQ(a | b, U128(0xFFF0, 0x567C));
  EXPECT_EQ(a ^ a, U128(0, 0));
}

TEST(U128, HexRoundTrip) {
  Rng rng(55);
  for (int i = 0; i < 200; ++i) {
    const U128 v(rng(), rng());
    EXPECT_EQ(U128::from_hex(v.to_hex()), v);
  }
}

TEST(U128, HexFormat) {
  EXPECT_EQ(U128(0, 0).to_hex(), std::string(32, '0'));
  EXPECT_EQ(U128(0, 0xABC).to_hex(),
            "00000000000000000000000000000abc");
  EXPECT_EQ(U128::from_hex("0xABC"), U128(0, 0xABC));
  EXPECT_EQ(U128::from_hex("ff"), U128(0, 255));
}

TEST(U128, HexRejectsBadInput) {
  EXPECT_THROW(U128::from_hex(""), std::invalid_argument);
  EXPECT_THROW(U128::from_hex("0x"), std::invalid_argument);
  EXPECT_THROW(U128::from_hex("xyz"), std::invalid_argument);
  EXPECT_THROW(U128::from_hex(std::string(33, 'a')), std::invalid_argument);
}

TEST(U128, RingDistanceWraps) {
  const U128 a(0, 10);
  const U128 b(0, 3);
  EXPECT_EQ(ring_distance(b, a), U128(0, 7));
  // Going the other way wraps around the whole ring.
  EXPECT_EQ(ring_distance(a, b), U128(0, 3) - U128(0, 10));
  EXPECT_EQ(ring_distance(a, a), U128(0, 0));
}

TEST(U128, IntervalOpenClosed) {
  const U128 a(0, 10);
  const U128 b(0, 20);
  EXPECT_TRUE(in_interval_oc(U128(0, 15), a, b));
  EXPECT_TRUE(in_interval_oc(b, a, b));    // closed at right end
  EXPECT_FALSE(in_interval_oc(a, a, b));   // open at left end
  EXPECT_FALSE(in_interval_oc(U128(0, 25), a, b));
  // Wrapping interval (20, 10]: contains 25 and 5 but not 15.
  EXPECT_TRUE(in_interval_oc(U128(0, 25), b, a));
  EXPECT_TRUE(in_interval_oc(U128(0, 5), b, a));
  EXPECT_FALSE(in_interval_oc(U128(0, 15), b, a));
}

TEST(U128, IntervalOpenOpen) {
  const U128 a(0, 10);
  const U128 b(0, 20);
  EXPECT_TRUE(in_interval_oo(U128(0, 15), a, b));
  EXPECT_FALSE(in_interval_oo(b, a, b));
  EXPECT_FALSE(in_interval_oo(a, a, b));
}

TEST(U128, FullRingConvention) {
  // When from == to, (from, to] is the entire ring (Chord convention).
  const U128 x(0, 42);
  EXPECT_TRUE(in_interval_oc(U128(0, 7), x, x));
  EXPECT_TRUE(in_interval_oc(U128(0, 41), x, x));
  // A single-node ring owns every key, including its own id.
  EXPECT_TRUE(in_interval_oc(x, x, x));
  // The open-open variant excludes only the endpoint.
  EXPECT_TRUE(in_interval_oo(U128(0, 7), x, x));
  EXPECT_FALSE(in_interval_oo(x, x, x));
}

TEST(U128, HashSpreads) {
  std::unordered_set<U128> set;
  Rng rng(1);
  for (int i = 0; i < 10'000; ++i) set.insert(U128(rng(), rng()));
  EXPECT_EQ(set.size(), 10'000u);
}

}  // namespace
}  // namespace dprank
