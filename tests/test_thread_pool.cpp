#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace dprank {
namespace {

TEST(ThreadPool, EveryShardRunsExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.concurrency(), 4u);
  std::vector<std::atomic<int>> hits(257);
  pool.run(257, [&](unsigned shard, unsigned) { hits[shard].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ZeroWorkersDegradesToSequentialLoop) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.concurrency(), 1u);
  std::vector<unsigned> order;
  pool.run(5, [&](unsigned shard, unsigned slot) {
    EXPECT_EQ(slot, 0u);  // only the caller participates
    order.push_back(shard);
  });
  EXPECT_EQ(order, (std::vector<unsigned>{0, 1, 2, 3, 4}));
}

TEST(ThreadPool, SlotsStayWithinConcurrency) {
  ThreadPool pool(2);
  std::atomic<unsigned> bad{0};
  pool.run(100, [&](unsigned, unsigned slot) {
    if (slot >= pool.concurrency()) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0u);
}

TEST(ThreadPool, ReusableAcrossManyRegions) {
  // The engine runs two to three regions per pass for hundreds of
  // passes; the pool must be stable under rapid region turnover.
  ThreadPool pool(3);
  std::vector<std::atomic<std::uint64_t>> cell(64);
  for (int region = 0; region < 200; ++region) {
    pool.run(64, [&](unsigned shard, unsigned) { cell[shard].fetch_add(1); });
  }
  for (const auto& c : cell) EXPECT_EQ(c.load(), 200u);
}

TEST(ThreadPool, ZeroShardsIsANoOp) {
  ThreadPool pool(2);
  pool.run(0, [&](unsigned, unsigned) { FAIL() << "no shard should run"; });
}

TEST(ThreadPool, FirstExceptionPropagatesAndRegionCompletes) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  EXPECT_THROW(
      pool.run(32,
               [&](unsigned shard, unsigned) {
                 executed.fetch_add(1);
                 if (shard == 7) throw std::runtime_error("shard 7");
               }),
      std::runtime_error);
  // The region always completes: an exception poisons the result, not
  // the remaining shards.
  EXPECT_EQ(executed.load(), 32);
  // The pool stays usable after a failed region.
  std::atomic<int> after{0};
  pool.run(8, [&](unsigned, unsigned) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 8);
}

TEST(ThreadPool, UnevenShardCostsAllComplete) {
  ThreadPool pool(3);
  std::atomic<std::uint64_t> total{0};
  pool.run(40, [&](unsigned shard, unsigned) {
    std::uint64_t acc = 0;
    const std::uint64_t reps = (shard % 10 == 0) ? 200'000 : 10;
    for (std::uint64_t i = 0; i < reps; ++i) acc += i * i % 7;
    total.fetch_add(acc + 1);
  });
  EXPECT_GE(total.load(), 40u);
}

}  // namespace
}  // namespace dprank
