#include "pagerank/incremental.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "graph/generator.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/quality.hpp"

namespace dprank {
namespace {

PagerankOptions opts(double eps, double d = 0.85) {
  PagerankOptions o;
  o.epsilon = eps;
  o.damping = d;
  return o;
}

TEST(Incremental, Figure2ExactIncrements) {
  // The paper's Figure 2 with d = 1: G (rank 1, 3 outlinks) sends 1/3 to
  // H, I, J; H (2 outlinks) forwards 1/6 to K and L.
  const Digraph g = figure2_graph();
  std::vector<double> ranks(6, 0.0);
  IncrementalPagerank engine(g, ranks, opts(1e-9, /*d=*/1.0));
  const auto stats = engine.seed_and_propagate(0);

  EXPECT_DOUBLE_EQ(ranks[0], 1.0);        // G seeded
  EXPECT_DOUBLE_EQ(ranks[1], 1.0 / 3.0);  // H
  EXPECT_DOUBLE_EQ(ranks[2], 1.0 / 3.0);  // I
  EXPECT_DOUBLE_EQ(ranks[3], 1.0 / 3.0);  // J
  EXPECT_DOUBLE_EQ(ranks[4], 1.0 / 6.0);  // K
  EXPECT_DOUBLE_EQ(ranks[5], 1.0 / 6.0);  // L

  EXPECT_EQ(stats.nodes_covered, 5u);
  EXPECT_EQ(stats.updates_delivered, 5u);
  EXPECT_EQ(stats.path_length, 2u);  // G -> H -> {K, L}
}

TEST(Incremental, Figure2WithDamping) {
  const Digraph g = figure2_graph();
  std::vector<double> ranks(6, 0.0);
  IncrementalPagerank engine(g, ranks, opts(1e-9, 0.85));
  (void)engine.seed_and_propagate(0);
  EXPECT_DOUBLE_EQ(ranks[1], 0.85 / 3.0);
  EXPECT_DOUBLE_EQ(ranks[4], 0.85 * (0.85 / 3.0) / 2.0);
}

TEST(Incremental, ThresholdStopsPropagation) {
  // With a large epsilon the H -> K/L forwards are suppressed.
  const Digraph g = figure2_graph();
  std::vector<double> ranks(6, 1.0);  // relative change 1/3 on H et al.
  IncrementalPagerank engine(g, ranks, opts(/*eps=*/0.5, 1.0));
  const auto stats = engine.seed_and_propagate(0);
  EXPECT_EQ(stats.path_length, 1u);      // only G's direct outlinks
  EXPECT_EQ(stats.nodes_covered, 3u);    // H, I, J
  EXPECT_DOUBLE_EQ(ranks[4], 1.0);       // K untouched
}

TEST(Incremental, ProbeRestoresRanks) {
  const Digraph g = paper_graph(2000, 5);
  std::vector<double> ranks = centralized_pagerank(g, 0.85).ranks;
  const auto before = ranks;
  IncrementalPagerank engine(g, ranks, opts(1e-4));
  const auto stats = engine.probe_insert(123);
  EXPECT_GT(stats.updates_delivered, 0u);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    ASSERT_DOUBLE_EQ(ranks[v], before[v]) << "node " << v;
  }
}

TEST(Incremental, ProbesAreIndependent) {
  const Digraph g = paper_graph(2000, 6);
  std::vector<double> ranks = centralized_pagerank(g, 0.85).ranks;
  IncrementalPagerank engine(g, ranks, opts(1e-4));
  const auto first = engine.probe_insert(7);
  (void)engine.probe_insert(1234);
  const auto again = engine.probe_insert(7);
  EXPECT_EQ(first.updates_delivered, again.updates_delivered);
  EXPECT_EQ(first.nodes_covered, again.nodes_covered);
  EXPECT_EQ(first.path_length, again.path_length);
}

TEST(Incremental, CoverageGrowsAsEpsilonShrinks) {
  // Table 4: node coverage grows roughly linearly in 1/epsilon.
  const Digraph g = paper_graph(10'000, 7);
  std::vector<double> ranks = centralized_pagerank(g, 0.85).ranks;
  IncrementalPagerank engine(g, ranks, opts(1e-1));
  std::uint64_t prev_coverage = 0;
  std::uint32_t prev_path = 0;
  for (const double eps : {1e-1, 1e-2, 1e-3}) {
    IncrementalPagerank probe(g, ranks, opts(eps));
    // Average a few source nodes to damp variance.
    std::uint64_t coverage = 0;
    std::uint32_t path = 0;
    for (const NodeId src : {11u, 222u, 3333u}) {
      const auto s = probe.probe_insert(src);
      coverage += s.nodes_covered;
      path = std::max(path, s.path_length);
    }
    EXPECT_GE(coverage, prev_coverage);
    EXPECT_GE(path, prev_path);
    prev_coverage = coverage;
    prev_path = path;
  }
  EXPECT_GT(prev_coverage, 3u);
}

TEST(Incremental, InsertThenExactRecomputeAgree) {
  // After inserting a real document, the incrementally updated ranks
  // must match a from-scratch centralized solve on the new graph, within
  // the propagation tolerance.
  const Digraph base = paper_graph(1000, 8);
  MutableDigraph g(base);
  std::vector<double> ranks = centralized_pagerank(base, 0.85, 1e-13).ranks;

  NodeId new_id = 0;
  const auto stats = insert_document(g, ranks, {5, 17, 400}, opts(1e-7),
                                     &new_id);
  EXPECT_EQ(new_id, 1000u);
  EXPECT_GT(stats.updates_delivered, 0u);

  const auto exact = centralized_pagerank(g.freeze(), 0.85, 1e-13).ranks;
  const auto q = summarize_quality(ranks, exact);
  EXPECT_LT(q.max, 1e-4);
}

TEST(Incremental, DeleteThenExactRecomputeAgree) {
  const Digraph base = paper_graph(1000, 9);
  MutableDigraph g(base);
  std::vector<double> ranks = centralized_pagerank(base, 0.85, 1e-13).ranks;

  // Pick a document with out-links but no in-links: the paper's delete
  // protocol propagates the negated rank along out-links; a victim with
  // in-links would also change its sources' out-degrees, a second-order
  // effect the protocol (and this test) does not model.
  NodeId victim = base.num_nodes();
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    if (base.out_degree(v) > 0 && base.in_degree(v) == 0) {
      victim = v;
      break;
    }
  }
  if (victim == base.num_nodes()) {
    GTEST_SKIP() << "no in-degree-0 document in this graph seed";
  }
  const auto stats = delete_document(g, ranks, victim, opts(1e-7));
  EXPECT_GT(stats.updates_delivered, 0u);
  EXPECT_TRUE(g.is_isolated(victim));
  EXPECT_DOUBLE_EQ(ranks[victim], 0.0);

  auto exact = centralized_pagerank(g.freeze(), 0.85, 1e-13).ranks;
  exact[victim] = 0.0;  // deleted doc carries no rank in either view
  const auto q = summarize_quality(ranks, exact);
  EXPECT_LT(q.max, 1e-4);
}

TEST(Incremental, InsertThenDeleteIsNoOp) {
  // Inserting a document and immediately deleting it must return every
  // other rank to its original value (within tolerance).
  const Digraph base = paper_graph(1000, 10);
  MutableDigraph g(base);
  std::vector<double> ranks = centralized_pagerank(base, 0.85, 1e-13).ranks;
  const auto before = ranks;

  NodeId id = 0;
  (void)insert_document(g, ranks, {3, 50, 700}, opts(1e-9), &id);
  (void)delete_document(g, ranks, id, opts(1e-9));

  // Truncation residue per cascade is bounded relative to each node's
  // rank (the stopping rule is relative), so compare relatively.
  for (NodeId v = 0; v < base.num_nodes(); ++v) {
    ASSERT_NEAR(ranks[v], before[v], 1e-4 * std::max(1.0, before[v]))
        << "node " << v;
  }
}

TEST(Incremental, CrossPeerMessagesCounted) {
  const Digraph g = paper_graph(2000, 11);
  std::vector<double> ranks = centralized_pagerank(g, 0.85).ranks;
  const auto placement = Placement::random(2000, 50, 11);
  IncrementalPagerank engine(g, ranks, opts(1e-3), &placement);
  const auto stats = engine.probe_insert(42);
  EXPECT_LE(stats.cross_peer_messages, stats.updates_delivered);
  // With 50 peers, ~98% of links cross peers.
  if (stats.updates_delivered > 20) {
    EXPECT_GT(stats.cross_peer_messages, stats.updates_delivered / 2);
  }
}

TEST(Incremental, ValidatesNodeIds) {
  const Digraph g = figure2_graph();
  std::vector<double> ranks(6, 1.0);
  IncrementalPagerank engine(g, ranks, opts(1e-3));
  EXPECT_THROW(engine.seed_and_propagate(6), std::out_of_range);
  EXPECT_THROW(engine.probe_insert(100), std::out_of_range);
  EXPECT_THROW(engine.propagate_delete(6), std::out_of_range);
  EXPECT_THROW(engine.inject(6, 0.1), std::out_of_range);
}

TEST(Incremental, RankVectorSizeValidated) {
  const Digraph g = figure2_graph();
  std::vector<double> wrong(5, 1.0);
  EXPECT_THROW(IncrementalPagerank(g, wrong, opts(1e-3)),
               std::invalid_argument);
}

TEST(Incremental, LastTouchedPopulatedByEveryMutatingEntryPoint) {
  const Digraph g = figure2_graph();

  {  // seed_and_propagate: seed + cascade targets
    std::vector<double> ranks(6, 0.0);
    IncrementalPagerank engine(g, ranks, opts(1e-9, 1.0));
    (void)engine.seed_and_propagate(0);
    const auto& touched = engine.last_touched();
    EXPECT_EQ(touched.size(), 6u);  // G itself + H, I, J, K, L
    EXPECT_NE(std::find(touched.begin(), touched.end(), 0u), touched.end())
        << "seed node missing from last_touched";
  }
  {  // propagate_delete: the deleted document + its cascade targets
    std::vector<double> ranks(6, 1.0);
    IncrementalPagerank engine(g, ranks, opts(1e-9, 1.0));
    (void)engine.propagate_delete(0);
    const auto& touched = engine.last_touched();
    EXPECT_NE(std::find(touched.begin(), touched.end(), 0u), touched.end())
        << "deleted node missing from last_touched";
    EXPECT_GE(touched.size(), 4u);  // G + at least H, I, J
  }
  {  // inject: the injection point
    std::vector<double> ranks(6, 1.0);
    IncrementalPagerank engine(g, ranks, opts(1e-9, 1.0));
    (void)engine.inject(4, 0.25);
    const auto& touched = engine.last_touched();
    EXPECT_NE(std::find(touched.begin(), touched.end(), 4u), touched.end());
  }
  {  // probe_insert restores everything: nothing stays touched
    std::vector<double> ranks(6, 1.0);
    IncrementalPagerank engine(g, ranks, opts(1e-9, 1.0));
    (void)engine.probe_insert(0);
    EXPECT_TRUE(engine.last_touched().empty());
  }
}

TEST(Incremental, InjectBatchCoalescesDuplicates) {
  // Two deltas to H coalesce into one delivery whose significance test
  // sees the sum; the result matches a single inject of the sum.
  const Digraph g = figure2_graph();
  std::vector<double> batched(6, 1.0);
  std::vector<double> single(6, 1.0);
  {
    IncrementalPagerank engine(g, batched, opts(1e-9, 1.0));
    const auto stats = engine.inject_batch({{1, 0.1}, {1, 0.2}});
    EXPECT_EQ(stats.updates_delivered, 3u);  // H once, then K and L
    EXPECT_NE(std::find(engine.last_touched().begin(),
                        engine.last_touched().end(), 1u),
              engine.last_touched().end());
  }
  {
    IncrementalPagerank engine(g, single, opts(1e-9, 1.0));
    (void)engine.inject(1, 0.3);
  }
  for (NodeId v = 0; v < 6; ++v) {
    ASSERT_DOUBLE_EQ(batched[v], single[v]) << "node " << v;
  }
}

TEST(Incremental, InjectBatchValidatesNodeIds) {
  const Digraph g = figure2_graph();
  std::vector<double> ranks(6, 1.0);
  IncrementalPagerank engine(g, ranks, opts(1e-3));
  EXPECT_THROW(engine.inject_batch({{1, 0.1}, {6, 0.1}}), std::out_of_range);
}

TEST(Incremental, PropagateFullDeleteLeavesNoDanglingRank) {
  const Digraph base = paper_graph(500, 12);
  MutableDigraph g(base);
  std::vector<double> ranks = centralized_pagerank(base, 0.85, 1e-13).ranks;
  const Digraph snapshot = g.freeze();
  IncrementalPagerank engine(snapshot, ranks, opts(1e-7));

  const NodeId victim = 42;
  (void)engine.propagate_full_delete(g, victim);
  EXPECT_TRUE(g.is_isolated(victim));
  EXPECT_DOUBLE_EQ(ranks[victim], 0.0);
  const auto& touched = engine.last_touched();
  EXPECT_NE(std::find(touched.begin(), touched.end(), victim), touched.end());

  // Wrong graph (size mismatch with the snapshot) is rejected.
  MutableDigraph other(NodeId{3});
  EXPECT_THROW(engine.propagate_full_delete(other, 1), std::invalid_argument);
}

TEST(Incremental, IsolateNodeReturnsRemovedEdgeCount) {
  MutableDigraph g(NodeId{4});
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(3, 0);
  EXPECT_EQ(g.isolate_node(0), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.isolate_node(0), 0u);
}

TEST(Incremental, DanglingSeedSendsNothing) {
  const Digraph g = figure2_graph();
  std::vector<double> ranks(6, 0.5);
  IncrementalPagerank engine(g, ranks, opts(1e-6));
  const auto stats = engine.seed_and_propagate(4);  // K has no outlinks
  EXPECT_EQ(stats.updates_delivered, 0u);
  EXPECT_EQ(stats.nodes_covered, 0u);
  EXPECT_DOUBLE_EQ(ranks[4], 1.0);  // still seeded
}

}  // namespace
}  // namespace dprank
