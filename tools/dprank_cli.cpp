// dprank command-line interface.
//
// Subcommands:
//   gen     --nodes N [--seed S] [--dangling F] --out FILE
//           synthesize a web-like link graph and save it
//   stats   --graph FILE
//           degree statistics + Broder bow-tie decomposition
//   rank    --graph FILE [--peers P] [--epsilon E] [--placement MODE]
//           [--availability F] [--threads T] [--ranks-out FILE]
//           [--engine distributed|walk|gossip]
//           [--schedule fifo|residual] [--adaptive-epsilon]
//           [--check-invariants [N]]
//           run the distributed pagerank computation; --engine selects
//           the algorithm (default distributed = the paper's chaotic
//           fifo iteration; walk = random-walk estimation; gossip =
//           randomized gossip iteration); --schedule residual
//           enables residual-prioritized scheduling (fewer update
//           messages, ranks within epsilon of fifo) and
//           --adaptive-epsilon additionally loosens the emission
//           threshold early and tightens it as the run converges;
//           --check-invariants runs the full contract-validator sweep
//           every N passes (default every pass) — needs a build with
//           DPRANK_CHECK_INVARIANTS=ON (the default outside Release)
//   insert  --graph FILE [--epsilon E] [--count K] [--seed S]
//           measure insert-propagation cost (Table 4's experiment)
//   search  [--docs N] [--peers P] [--queries Q] [--terms T] [--top PCT]
//           corpus + distributed index + incremental search
//   stream  [--docs N] [--events E] [--batch B] [--reconverge-every R]
//           [--rate EPS] [--epsilon E] [--seed S] [--top K]
//           continuous ingest through the live-rank service: a seeded
//           event stream (inserts/deletes/edge mutations) is batched
//           into coalesced rank cascades while top-k and point queries
//           are served between batches; --reconverge-every R runs a
//           full distributed reconvergence (churn + mass audit) every
//           R offered events. Prints per-mark staleness vs the
//           fully-reconverged oracle and the final top-k.
//           (`dprank_cli --stream ...` is accepted as an alias.)
//
// rank/insert/search also take the telemetry flags:
//   --metrics-out FILE   dump the run's metrics registry as JSON
//   --trace-out FILE     dump a Chrome trace_event JSON (open in Perfetto)
//
// Examples:
//   dprank_cli gen --nodes 100000 --out web.dpg
//   dprank_cli rank --graph web.dpg --peers 500 --epsilon 1e-3
//   dprank_cli search --docs 11000 --terms 2 --top 10
//   dprank_cli system --docs 5000 --ops 20   (lifecycle + doctor)

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/contracts.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "engines/registry.hpp"
#include "graph/generator.hpp"
#include "graph/graph_io.hpp"
#include "graph/graph_stats.hpp"
#include "graph/scc.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "p2p/placement.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/incremental.hpp"
#include "pagerank/quality.hpp"
#include "search/corpus.hpp"
#include "search/distributed_index.hpp"
#include "search/incremental_search.hpp"
#include "core/p2p_system.hpp"
#include "search/query_gen.hpp"
#include "sim/experiment.hpp"
#include "sim/time_model.hpp"
#include "stream/ingest_coordinator.hpp"
#include "stream/live_rank_service.hpp"
#include "stream/stream_source.hpp"

namespace dprank::cli {
namespace {

class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) {
        throw std::invalid_argument("expected --flag, got: " + key);
      }
      key = key.substr(2);
      // Boolean flags: a flag followed by another --flag (or the end of
      // the line) stands alone and reads as "1" (--check-invariants).
      if (i + 1 >= argc || std::string(argv[i + 1]).rfind("--", 0) == 0) {
        values_[key] = "1";
      } else {
        values_[key] = argv[++i];
      }
    }
  }

  [[nodiscard]] std::string require(const std::string& key) const {
    const auto it = values_.find(key);
    if (it == values_.end()) {
      throw std::invalid_argument("missing required --" + key);
    }
    return it->second;
  }
  [[nodiscard]] std::string get(const std::string& key,
                                const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] std::uint64_t get_u64(const std::string& key,
                                      std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoull(it->second);
  }
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Shared --metrics-out / --trace-out handling. Call after the run;
/// writes only the artifacts the user asked for.
void write_telemetry_outputs(const Args& args,
                             const obs::MetricsRegistry& registry,
                             const obs::Tracer& tracer) {
  const std::string metrics_out = args.get("metrics-out", "");
  if (!metrics_out.empty()) {
    obs::write_metrics_json_file(registry.snapshot(), metrics_out);
    std::cout << "wrote metrics to " << metrics_out << "\n";
  }
  const std::string trace_out = args.get("trace-out", "");
  if (!trace_out.empty()) {
    obs::write_chrome_trace_file(tracer, trace_out);
    std::cout << "wrote trace to " << trace_out << " ("
              << tracer.events().size() << " events)\n";
  }
}

int cmd_gen(const Args& args) {
  WebGraphParams params;
  params.num_nodes = args.get_u64("nodes", 10'000);
  params.seed = args.get_u64("seed", 42);
  params.dangling_fraction = args.get_double("dangling", 0.0);
  const std::string out = args.require("out");
  std::cout << "Generating " << params.num_nodes
            << "-node web graph (seed " << params.seed << ")...\n";
  const Digraph g = generate_web_graph(params);
  save_graph(g, out);
  std::cout << "Wrote " << g.num_edges() << " edges to " << out << "\n";
  return 0;
}

int cmd_stats(const Args& args) {
  const Digraph g = load_graph(args.require("graph"));
  const auto deg = compute_degree_stats(g);
  std::cout << "nodes:            " << format_count(g.num_nodes()) << "\n"
            << "edges:            " << format_count(g.num_edges()) << "\n"
            << "avg out-degree:   " << format_fixed(deg.out_degree.mean(), 2)
            << " (max " << format_count(static_cast<std::uint64_t>(
                               deg.out_degree.max()))
            << ")\n"
            << "avg in-degree:    " << format_fixed(deg.in_degree.mean(), 2)
            << " (max " << format_count(static_cast<std::uint64_t>(
                               deg.in_degree.max()))
            << ")\n"
            << "dangling nodes:   " << format_count(deg.dangling_nodes) << "\n"
            << "sourceless nodes: " << format_count(deg.sourceless_nodes)
            << "\n";
  const auto bt = bowtie_decomposition(g);
  std::cout << "bow-tie: core " << format_count(bt.core) << ", in "
            << format_count(bt.in) << ", out " << format_count(bt.out)
            << ", other " << format_count(bt.other) << "\n";
  return 0;
}

int cmd_rank(const Args& args) {
  const Digraph g = load_graph(args.require("graph"));
  const auto peers =
      static_cast<PeerId>(args.get_u64("peers", 500));
  const double epsilon = args.get_double("epsilon", 1e-3);
  const double availability = args.get_double("availability", 1.0);
  const auto seed = args.get_u64("seed", 42);
  const std::string placement_mode = args.get("placement", "random");

  const Placement placement =
      placement_mode == "cluster"
          ? Placement::by_link_clustering(g, peers, seed)
          : Placement::random(g.num_nodes(), peers, seed);

  PagerankOptions options;
  options.epsilon = epsilon;
  options.threads = static_cast<std::uint32_t>(
      args.get_u64("threads", experiment_threads()));
  const std::string schedule = args.get("schedule", "fifo");
  if (schedule == "residual") {
    options.schedule = Schedule::kResidual;
  } else if (schedule != "fifo") {
    throw std::invalid_argument("--schedule must be fifo or residual, got: " +
                                schedule);
  }
  options.adaptive_epsilon = args.get_u64("adaptive-epsilon", 0) != 0;
  if (options.adaptive_epsilon && options.schedule != Schedule::kResidual) {
    throw std::invalid_argument(
        "--adaptive-epsilon requires --schedule residual");
  }
  options.validate_every_n_passes = args.get_u64("check-invariants", 0);
  if (options.validate_every_n_passes != 0 && !contracts::enabled()) {
    std::cerr << "warning: --check-invariants requested but contract "
                 "checks are compiled out; rebuild with "
                 "-DDPRANK_CHECK_INVARIANTS=ON\n";
  }

  const std::string engine_name = args.get("engine", "distributed");
  if (!is_registered_engine(engine_name)) {
    std::string known;
    for (const auto& n : registered_engines()) {
      if (!known.empty()) known += "|";
      known += n;
    }
    throw std::invalid_argument("--engine must be one of " + known +
                                ", got: " + engine_name);
  }
  // The scheduler knobs are features of the fifo/residual engine only.
  if (engine_name != "distributed" &&
      (schedule != "fifo" || options.adaptive_epsilon ||
       options.validate_every_n_passes != 0)) {
    throw std::invalid_argument(
        "--schedule/--adaptive-epsilon/--check-invariants only apply to "
        "--engine distributed");
  }
  EngineOptions engine_options;
  engine_options.pagerank = options;
  engine_options.seed = seed;
  const auto engine = make_engine(engine_name, g, placement, engine_options);

  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  engine->attach_metrics(registry);
  if (!args.get("trace-out", "").empty()) {
    if (!engine->traits().supports_tracer) {
      throw std::invalid_argument("--trace-out: engine '" + engine_name +
                                  "' does not support tracing");
    }
    engine->attach_tracer(tracer, make_pass_clock(NetworkParams{}));
  }
  DistributedRunResult run;
  if (availability < 1.0) {
    ChurnSchedule churn(peers, availability, seed);
    run = engine->run(&churn);
  } else {
    run = engine->run();
  }

  std::cout << "engine:    " << engine_name << "\n"
            << "converged: " << (run.converged ? "yes" : "NO") << " in "
            << run.passes << " passes\n"
            << "messages:  " << format_count(engine->traffic().messages())
            << " (" << format_count(engine->traffic().bytes()) << " bytes)\n"
            << "local upd: " << format_count(engine->traffic().local_updates())
            << "\n";
  if (options.schedule == Schedule::kResidual) {
    std::uint64_t deferred = 0;
    for (const auto& pass : engine->pass_history()) {
      deferred += pass.docs_deferred;
    }
    std::cout << "deferred:  " << format_count(deferred)
              << " recomputes postponed by the residual schedule\n";
  }

  const std::string ranks_out = args.get("ranks-out", "");
  if (!ranks_out.empty()) {
    std::ofstream os(ranks_out);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      os << v << ' ' << engine->ranks()[v] << '\n';
    }
    std::cout << "wrote ranks to " << ranks_out << "\n";
  }
  write_telemetry_outputs(args, registry, tracer);
  return 0;
}

int cmd_insert(const Args& args) {
  const Digraph g = load_graph(args.require("graph"));
  const double epsilon = args.get_double("epsilon", 1e-3);
  const auto count = args.get_u64("count", 100);
  const auto seed = args.get_u64("seed", 42);

  std::vector<double> ranks = centralized_pagerank(g, 0.85, 1e-10).ranks;
  PagerankOptions options;
  options.epsilon = epsilon;
  IncrementalPagerank engine(g, ranks, options);
  Rng rng(seed);
  // The incremental engine has no attach hooks (each probe is a tiny
  // local computation); record per-probe stats here instead.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  auto& probe_count = registry.counter("insert.probes");
  auto& path_hist = registry.histogram("insert.path_length");
  auto& coverage_hist = registry.histogram("insert.nodes_covered");
  auto& update_hist = registry.histogram("insert.updates_delivered");
  double path = 0;
  double coverage = 0;
  double messages = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto node = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    const auto stats = engine.probe_insert(node);
    path += stats.path_length;
    coverage += static_cast<double>(stats.nodes_covered);
    messages += static_cast<double>(stats.updates_delivered);
    probe_count.add();
    path_hist.record(stats.path_length);
    coverage_hist.record(static_cast<double>(stats.nodes_covered));
    update_hist.record(static_cast<double>(stats.updates_delivered));
    tracer.complete("insert.probe", "insert", 0, stats.path_length,
                    {{"node", static_cast<double>(node)},
                     {"covered", static_cast<double>(stats.nodes_covered)},
                     {"updates", static_cast<double>(stats.updates_delivered)}});
    tracer.advance_time(tracer.now_us() + stats.path_length);
  }
  const auto n = static_cast<double>(count);
  std::cout << "inserts probed:    " << count << "\n"
            << "avg path length:   " << format_fixed(path / n, 1) << "\n"
            << "avg node coverage: " << format_fixed(coverage / n, 0) << "\n"
            << "avg messages:      " << format_fixed(messages / n, 0)
            << "\n";
  write_telemetry_outputs(args, registry, tracer);
  return 0;
}

int cmd_search(const Args& args) {
  CorpusParams cp;
  cp.num_docs = static_cast<std::uint32_t>(args.get_u64("docs", 11'000));
  cp.seed = args.get_u64("seed", 42);
  const auto peers = static_cast<PeerId>(args.get_u64("peers", 50));
  const auto num_queries =
      static_cast<std::uint32_t>(args.get_u64("queries", 20));
  const auto terms =
      static_cast<std::uint32_t>(args.get_u64("terms", 2));
  const double top_pct = args.get_double("top", 10.0);

  const Corpus corpus = Corpus::synthesize(cp);
  ExperimentConfig cfg;
  cfg.num_docs = cp.num_docs;
  cfg.num_peers = peers;
  cfg.seed = cp.seed;
  const StandardExperiment exp(cfg);
  // One registry/tracer covers both phases: the rank computation that
  // seeds the index and the query fan-out below share the output files.
  obs::MetricsRegistry registry;
  obs::Tracer tracer;
  const bool want_trace = !args.get("trace-out", "").empty();
  StandardExperiment::Telemetry telemetry;
  telemetry.registry = &registry;
  telemetry.tracer = want_trace ? &tracer : nullptr;
  const auto outcome = exp.run_distributed(nullptr, telemetry);

  ChordRing ring(peers);
  DistributedIndex index(corpus, ring);
  std::vector<PeerId> owner(cp.num_docs);
  for (NodeId d = 0; d < cp.num_docs; ++d) {
    owner[d] = exp.placement().peer_of(d);
  }
  index.publish_ranks(outcome.ranks, owner);

  SearchEngine engine(index);
  engine.bind_metrics(registry);
  if (want_trace) engine.bind_tracer(tracer);
  SearchPolicy policy;
  policy.forward_fraction = top_pct / 100.0;
  const auto queries = generate_queries(
      corpus, {.term_pool = 100, .num_queries = num_queries,
               .terms_per_query = terms, .seed = cp.seed});
  double base_ids = 0;
  double inc_ids = 0;
  double hits = 0;
  for (const auto& q : queries) {
    base_ids += static_cast<double>(
        engine.run_query(q, kForwardEverything).ids_transferred);
    const auto out = engine.run_query(q, policy);
    inc_ids += static_cast<double>(out.ids_transferred);
    hits += static_cast<double>(out.hits.size());
  }
  std::cout << num_queries << " " << terms << "-term queries, top-"
            << top_pct << "% forwarding:\n"
            << "  traffic reduction: "
            << format_fixed(base_ids / std::max(1.0, inc_ids), 1) << "x\n"
            << "  avg hits returned: "
            << format_fixed(hits / num_queries, 1) << "\n";
  write_telemetry_outputs(args, registry, tracer);
  return 0;
}

int cmd_system(const Args& args) {
  // Scripted full-system lifecycle: bootstrap, converge, N random
  // inserts/deletes/searches, then the consistency doctor.
  CorpusParams cp;
  cp.num_docs = static_cast<std::uint32_t>(args.get_u64("docs", 5'000));
  cp.vocabulary = static_cast<TermId>(args.get_u64("vocab", 500));
  cp.mean_terms = 40;
  cp.min_terms = 5;
  cp.max_terms = 200;
  cp.seed = args.get_u64("seed", 42);
  const auto ops = args.get_u64("ops", 20);

  const Corpus corpus = Corpus::synthesize(cp);
  const Digraph graph = paper_graph(cp.num_docs, cp.seed);
  P2PSystemConfig cfg;
  cfg.num_peers = static_cast<PeerId>(args.get_u64("peers", 50));
  cfg.pagerank.epsilon = args.get_double("epsilon", 1e-4);
  cfg.seed = cp.seed;
  P2PSystem system(graph, corpus, cfg);

  std::cout << "converge: " << system.converge() << " passes, "
            << format_count(system.traffic().messages()) << " messages\n";

  Rng rng(cp.seed ^ 0x0B5ULL);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  std::vector<NodeId> inserted;
  for (std::uint64_t op = 0; op < ops; ++op) {
    const auto kind = rng.bounded(3);
    if (kind == 0) {
      std::vector<TermId> terms;
      for (int t = 0; t < 3; ++t) {
        terms.push_back(static_cast<TermId>(rng.bounded(cp.vocabulary)));
      }
      std::vector<NodeId> links;
      for (int l = 0; l < 3; ++l) {
        NodeId v = static_cast<NodeId>(rng.bounded(system.num_documents()));
        while (!system.is_live(v)) {
          v = static_cast<NodeId>(rng.bounded(system.num_documents()));
        }
        links.push_back(v);
      }
      inserted.push_back(system.add_document(terms, links));
      std::cout << "  insert doc-" << inserted.back() << "\n";
    } else if (kind == 1 && !inserted.empty()) {
      const NodeId victim = inserted.back();
      inserted.pop_back();
      if (system.is_live(victim)) {
        system.remove_document(victim);
        std::cout << "  delete doc-" << victim << "\n";
      }
    } else {
      const std::vector<TermId> q{
          static_cast<TermId>(rng.bounded(50)),
          static_cast<TermId>(rng.bounded(50))};
      const auto out = system.search(q, top10);
      std::cout << "  search {t" << q[0] << ", t" << q[1] << "}: "
                << out.hits.size() << " hits, " << out.ids_transferred
                << " ids moved\n";
    }
  }

  const auto issues = system.validate();
  std::cout << "doctor: "
            << (issues.empty() ? "all invariants hold"
                               : std::to_string(issues.size()) +
                                     " violations:")
            << "\n";
  for (const auto& issue : issues) std::cout << "  ! " << issue << "\n";
  std::cout << "total traffic: "
            << format_count(system.traffic().messages()) << " messages\n";
  return issues.empty() ? 0 : 1;
}

int cmd_stream(const Args& args) {
  const auto docs =
      static_cast<NodeId>(args.get_u64("docs", 2'000));
  const auto events = args.get_u64("events", 240);
  const auto batch =
      static_cast<std::uint32_t>(args.get_u64("batch", 16));
  const auto reconverge_every = args.get_u64("reconverge-every", 0);
  const double rate = args.get_double("rate", 1'000.0);
  const auto seed = args.get_u64("seed", 42);
  const auto top_k = args.get_u64("top", 10);

  std::cout << "Seeding " << format_count(docs)
            << "-doc graph and converging the baseline ranks...\n";
  const Digraph base = paper_graph(docs, seed);
  IngestConfig ic;
  ic.batch_size = batch;
  ic.reconverge_every_events = reconverge_every;
  ic.seed = seed;
  ic.options.epsilon = args.get_double("epsilon", 1e-6);
  ic.options.threads = 1;
  ic.reconverge.initial_peers =
      static_cast<PeerId>(args.get_u64("peers", 16));
  ic.reconverge.events = 8;
  ic.reconverge.min_live = 8;
  ic.reconverge.replicas = 1;
  std::vector<double> ranks =
      centralized_pagerank(base, ic.options.damping, 1e-13).ranks;

  obs::MetricsRegistry registry;
  obs::Tracer tracer;  // stream has no tracer hooks; satisfies telemetry API
  IngestCoordinator coord(MutableDigraph(base), std::move(ranks), ic,
                          &registry);
  LiveRankService service(coord, &registry);

  StreamSourceConfig sc;
  sc.initial_docs = docs;
  sc.max_events = events;
  sc.seed = seed;
  sc.events_per_sec = rate;
  StreamSource source(sc);

  // Staleness marks: ~8 per run, clamped so short runs still report.
  const std::uint64_t mark = std::max<std::uint64_t>(1, events / 8);
  std::cout << "Ingesting " << format_count(events) << " events at "
            << format_fixed(rate, 0) << " events/s (batch " << batch
            << (reconverge_every != 0
                    ? ", reconverge every " +
                          std::to_string(reconverge_every)
                    : std::string(", no reconvergence"))
            << ")...\n";
  for (std::uint64_t i = 1; i <= events; ++i) {
    coord.offer(source.next());
    (void)service.top_k(top_k);  // reads land mid-ingest, between batches
    if (i % mark == 0 || i == events) {
      const StalenessReport rep = service.measure_staleness();
      std::cout << "  offered " << format_count(coord.events_offered())
                << "  applied " << format_count(coord.events_applied())
                << "  pending " << rep.pending_events << "  staleness mean "
                << format_sig(rep.mean_abs, 3) << " max "
                << format_sig(rep.max_abs, 3) << "\n";
    }
  }
  coord.flush();
  // Doctor-style final sweep (same contract as `doctor`'s
  // system.validate()): the served graph/rank state must be internally
  // consistent after the full ingest. No-op in contract-free builds.
  coord.validate();

  std::cout << "\nlive docs:     " << format_count(source.live_docs())
            << " (of " << format_count(coord.graph().num_nodes())
            << " ever allocated)\n"
            << "reconverges:   " << format_count(coord.reconverge_cycles());
  for (const double m : coord.mass_ratios()) {
    std::cout << "  mass_ratio " << format_fixed(m, 6);
  }
  std::cout << "\nrank digest:   " << coord.digest() << "\n"
            << "topk cache:    " << format_count(service.topk_cache_hits())
            << " hits / " << format_count(service.topk_recomputes())
            << " recomputes\n\ntop-" << top_k << " documents:\n";
  for (const auto& [doc, rank] : service.top_k(top_k)) {
    std::cout << "  doc-" << doc << "  " << format_sig(rank, 6) << "\n";
  }
  write_telemetry_outputs(args, registry, tracer);
  return 0;
}

int usage() {
  std::cerr << "usage: dprank_cli <gen|stats|rank|insert|search|system"
               "|stream> [--flag value]\n"
               "see the header of tools/dprank_cli.cpp for per-command "
               "flags\n";
  return 2;
}

int run(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const Args args(argc, argv, 2);
  if (cmd == "gen") return cmd_gen(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "rank") return cmd_rank(args);
  if (cmd == "insert") return cmd_insert(args);
  if (cmd == "search") return cmd_search(args);
  if (cmd == "system") return cmd_system(args);
  // `--stream` is accepted as an alias so the quickstart's flag-style
  // invocation works too.
  if (cmd == "stream" || cmd == "--stream") return cmd_stream(args);
  return usage();
}

}  // namespace
}  // namespace dprank::cli

int main(int argc, char** argv) {
  try {
    return dprank::cli::run(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
