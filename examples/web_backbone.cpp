// Web-server backbone estimate (§4.6.2, §8).
//
// The paper closes by asking whether web servers themselves could
// compute pageranks as a backbone Internet service: servers exchange
// update messages over T3-class links, eliminating the central crawler.
// This example measures per-node message costs on simulated graphs, then
// extrapolates to a 3-billion-document web at several thresholds and
// bandwidths — the paper's "about 35 days at 1e-5 / 14 days at 1e-3"
// estimate.
//
// Build & run:  ./build/examples/web_backbone

#include <iostream>

#include "common/table.hpp"
#include "sim/experiment.hpp"
#include "sim/time_model.hpp"

int main() {
  using namespace dprank;
  constexpr double kWebDocuments = 3e9;  // the paper's web-scale corpus

  std::cout << "Measuring per-node message cost on a simulated 100k-"
               "document network (500 peers)...\n\n";

  TextTable table({"Threshold", "msgs/node (measured)", "passes",
                   "T3 (5.6 MB/s)", "200 KB/s", "32 KB/s"});
  for (const double eps : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
    ExperimentConfig cfg;
    cfg.num_docs = 100'000;
    cfg.num_peers = 500;
    cfg.epsilon = eps;
    const StandardExperiment exp(cfg);
    const auto outcome = exp.run_distributed();
    const double per_node = static_cast<double>(outcome.messages) /
                            static_cast<double>(cfg.num_docs);
    const auto passes = static_cast<double>(outcome.run.passes);

    auto days = [&](const NetworkParams& net) {
      return extrapolate_internet_scale(per_node, passes, kWebDocuments, net)
          .total_days();
    };
    table.add_row({format_sig(eps, 1), format_fixed(per_node, 1),
                   format_fixed(passes, 0),
                   format_fixed(days(t3_network()), 1) + " days",
                   format_fixed(days(broadband_network()), 0) + " days",
                   format_fixed(days(modem_network()), 0) + " days"});
  }
  table.print(std::cout);

  std::cout
      << "\nPaper's §4.6.2 estimate: ~14 days at epsilon 1e-3 and ~35 days "
         "at 1e-5 over T3 links for 3B documents — the same order as a "
         "2003-era crawler cycle, but with *continuous* incremental "
         "updates instead of periodic recrawls.\n"
         "The '99% of the graph converges in ~10 passes' observation "
         "means usable ranks arrive in roughly a tenth of the full "
         "convergence time (~4 days in the paper's arithmetic).\n";
  return 0;
}
