// Churn tolerance: peers leaving and joining mid-computation (§3.1,
// §4.3 "dynamic effects").
//
// Runs the same pagerank computation at several availability levels and
// shows that convergence survives churn — at a slower rate — with
// undeliverable updates parked in sender outboxes and delivered when
// peers return. Also demonstrates the threaded chaotic runtime on a
// small network (the asynchronous algorithm with real threads).
//
// Build & run:  ./build/examples/churn_demo

#include <iostream>

#include "common/table.hpp"
#include "pagerank/async_runtime.hpp"
#include "pagerank/quality.hpp"
#include "sim/experiment.hpp"

int main() {
  using namespace dprank;
  constexpr std::uint64_t kDocs = 20'000;
  constexpr PeerId kPeers = 500;

  std::cout << "Distributed pagerank on " << kDocs << " documents / "
            << kPeers << " peers, epsilon 1e-3, under churn:\n\n";

  TextTable table({"Availability", "Passes", "Messages", "Parked (peak)",
                   "Late deliveries", "Max rel err vs R_c"});

  for (const double availability : {1.0, 0.75, 0.5, 0.25}) {
    ExperimentConfig cfg;
    cfg.num_docs = kDocs;
    cfg.num_peers = kPeers;
    cfg.epsilon = 1e-3;
    cfg.availability = availability;
    const StandardExperiment exp(cfg);

    DistributedPagerank engine(exp.graph(), exp.placement(),
                               exp.pagerank_options());
    DistributedRunResult run;
    if (availability < 1.0) {
      ChurnSchedule churn(kPeers, availability, 99);
      run = engine.run(&churn);
    } else {
      run = engine.run();
    }
    std::uint64_t late = 0;
    for (const auto& s : engine.pass_history()) {
      late += s.messages_delivered_late;
    }
    const auto q = summarize_quality(engine.ranks(), exp.reference_ranks());
    table.add_row({format_fixed(availability * 100, 0) + "%",
                   std::to_string(run.passes) + (run.converged ? "" : "*"),
                   format_count(engine.traffic().messages()),
                   format_count(engine.outbox_peak()), format_count(late),
                   format_sig(q.max, 2)});
  }
  table.print(std::cout);
  std::cout << "\nHalving availability roughly doubles passes (the "
               "paper's Table 1 observation); accuracy is unaffected "
               "because updates wait in outboxes instead of being lost.\n";

  std::cout << "\n--- Threaded chaotic runtime (8 peer threads, no "
               "synchronization) ---\n";
  ExperimentConfig cfg;
  cfg.num_docs = 5'000;
  cfg.num_peers = 8;
  cfg.epsilon = 1e-6;
  const StandardExperiment exp(cfg);
  AsyncPagerankRuntime runtime(exp.graph(), exp.placement(),
                               exp.pagerank_options());
  const auto result = runtime.run();
  const auto q = summarize_quality(result.ranks, exp.reference_ranks());
  std::cout << "  quiescent after " << format_count(result.recomputes)
            << " document recomputes, "
            << format_count(result.cross_peer_messages)
            << " cross-peer messages\n  max relative error vs R_c: "
            << format_sig(q.max, 3)
            << " (chaotic iteration reaches the same fixed point).\n";
  return 0;
}
