// Quickstart: compute distributed pageranks for documents spread across
// a peer-to-peer network.
//
//   1. synthesize a web-like link graph (documents + references),
//   2. place the documents on peers at random (the paper's setup),
//   3. run the chaotic-iteration pagerank engine to convergence,
//   4. inspect ranks, message traffic and convergence behaviour.
//
// Build & run:  ./build/examples/quickstart [num_docs] [num_peers]

#include <cstdint>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "graph/generator.hpp"
#include "p2p/placement.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/distributed_engine.hpp"
#include "pagerank/quality.hpp"

int main(int argc, char** argv) {
  using namespace dprank;
  const std::uint64_t num_docs = argc > 1 ? std::stoull(argv[1]) : 20'000;
  const PeerId num_peers =
      argc > 2 ? static_cast<PeerId>(std::stoul(argv[2])) : 100;

  std::cout << "Synthesizing a " << num_docs
            << "-document web-like graph (Broder power laws, in 2.1 / out "
               "2.4)...\n";
  const Digraph graph = paper_graph(num_docs);
  std::cout << "  " << graph.num_edges() << " links\n";

  std::cout << "Placing documents on " << num_peers
            << " peers at random...\n";
  const Placement placement = Placement::random(num_docs, num_peers, 42);

  PagerankOptions options;
  options.epsilon = 1e-4;  // per-document convergence threshold
  std::cout << "Running distributed pagerank (damping "
            << options.damping << ", epsilon " << options.epsilon
            << ")...\n";
  DistributedPagerank engine(graph, placement, options);
  const auto run = engine.run();

  std::cout << "  converged: " << (run.converged ? "yes" : "NO") << " in "
            << run.passes << " passes\n"
            << "  cross-peer update messages: "
            << format_count(engine.traffic().messages()) << " ("
            << format_count(engine.traffic().bytes() / 1024)
            << " KiB at 24 B each)\n"
            << "  same-peer (free) updates:   "
            << format_count(engine.traffic().local_updates()) << "\n";

  // Top documents by rank.
  const auto& ranks = engine.ranks();
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0);
  std::partial_sort(order.begin(), order.begin() + 10, order.end(),
                    [&](NodeId a, NodeId b) { return ranks[a] > ranks[b]; });

  std::cout << "\nTop 10 documents by pagerank:\n";
  TextTable table({"Document", "Pagerank", "In-links", "Out-links", "Peer"});
  for (int i = 0; i < 10; ++i) {
    const NodeId d = order[static_cast<std::size_t>(i)];
    table.add_row({"doc-" + std::to_string(d), format_fixed(ranks[d], 4),
                   std::to_string(graph.in_degree(d)),
                   std::to_string(graph.out_degree(d)),
                   "peer-" + std::to_string(placement.peer_of(d))});
  }
  table.print(std::cout);

  // Sanity: compare against the conventional centralized solver.
  std::cout << "\nChecking against the centralized solver (R_c)...\n";
  const auto reference = centralized_pagerank(graph, options.damping, 1e-12);
  const auto quality = summarize_quality(ranks, reference.ranks);
  std::cout << "  max relative error:  " << format_sig(quality.max, 3)
            << "\n  avg relative error:  " << format_sig(quality.avg, 3)
            << "\n  within 1% of R_c:    "
            << format_fixed(quality.fraction_within_1pct * 100, 2) << "%\n";
  return 0;
}
