// Full-system walkthrough: one P2PSystem object running the paper's
// whole story — initial convergence, keyword search with incremental
// result fetching, live document inserts and deletes with continuously
// fresh ranks and index entries, and a single traffic ledger.
//
// Build & run:  ./build/examples/full_system

#include <iostream>

#include "common/table.hpp"
#include "core/p2p_system.hpp"
#include "graph/generator.hpp"
#include "search/corpus.hpp"

int main() {
  using namespace dprank;

  std::cout << "Bootstrapping: 8,000 documents on 50 peers...\n";
  CorpusParams cp;
  cp.num_docs = 8000;
  cp.vocabulary = 800;
  cp.mean_terms = 60;
  cp.min_terms = 8;
  cp.max_terms = 300;
  const Corpus corpus = Corpus::synthesize(cp);
  const Digraph graph = paper_graph(cp.num_docs);

  P2PSystemConfig cfg;
  cfg.num_peers = 50;
  cfg.pagerank.epsilon = 1e-4;
  P2PSystem system(graph, corpus, cfg);

  const auto passes = system.converge();
  std::cout << "  pagerank converged in " << passes << " passes; "
            << format_count(system.traffic().messages())
            << " messages so far (pagerank + index publication)\n\n";

  std::cout << "Paged search for {term 3 AND term 7}, 10% per screen:\n";
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  auto session = system.begin_search({3, 7}, top10);
  int screen = 1;
  while (!session.exhausted() && screen <= 3) {
    const auto batch = session.fetch_more();
    std::cout << "  screen " << screen++ << ": " << batch.size()
              << " new hits";
    if (!batch.empty()) {
      std::cout << " (best: doc-" << batch.front() << ", rank "
                << format_fixed(system.rank_of(batch.front()), 3) << ")";
    }
    std::cout << ", " << format_count(session.total_ids_transferred())
              << " ids moved so far\n";
  }
  const auto full = system.search({3, 7}, kForwardEverything);
  std::cout << "  (full result set: " << full.hits.size() << " hits for "
            << format_count(full.ids_transferred)
            << " ids — most users never pay it)\n\n";

  std::cout << "Live updates: inserting 3 documents, deleting 1...\n";
  const auto msgs_before = system.traffic().messages();
  const NodeId a = system.add_document({3, 7, 50}, {10, 20, 30});
  const NodeId b = system.add_document({3, 7}, {a, 40});
  const NodeId c = system.add_document({99}, {a, b});
  system.remove_document(c);
  std::cout << "  lifecycle traffic: "
            << format_count(system.traffic().messages() - msgs_before)
            << " messages (increments + index refreshes)\n";

  const auto fresh = system.search({3, 7}, top10);
  const bool found_a =
      std::find(fresh.hits.begin(), fresh.hits.end(), a) != fresh.hits.end();
  const bool found_b =
      std::find(fresh.hits.begin(), fresh.hits.end(), b) != fresh.hits.end();
  std::cout << "  new documents discoverable immediately: doc-" << a
            << (found_a ? " yes" : " (below top-10% cut)") << ", doc-" << b
            << (found_b ? " yes" : " (below top-10% cut)") << "\n"
            << "  deleted doc-" << c << " is live: "
            << (system.is_live(c) ? "yes (BUG)" : "no") << "\n\n";

  std::cout << "Total system traffic: "
            << format_count(system.traffic().messages()) << " messages, "
            << format_count(system.traffic().bytes() / 1024)
            << " KiB — no crawler, no central server, ranks always "
               "fresh.\n";
  return 0;
}
