// P2P keyword search with pagerank-sorted incremental forwarding
// (§2.4, §4.9).
//
// The full pipeline: synthesize a corpus over a link graph, compute
// distributed pageranks, publish them into a term-partitioned index, and
// run multi-word boolean queries three ways — baseline (all hits
// forwarded), incremental top-10%, and incremental + Bloom prefilter.
//
// Build & run:  ./build/examples/p2p_search [query terms...]
//               (terms are vocabulary indices; default runs a demo set)

#include <iostream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "search/corpus.hpp"
#include "search/distributed_index.hpp"
#include "search/incremental_search.hpp"
#include "search/query_gen.hpp"
#include "sim/experiment.hpp"

int main(int argc, char** argv) {
  using namespace dprank;
  constexpr PeerId kPeers = 50;  // the paper's search testbed

  std::cout << "Building an 11k-document corpus (1880-term vocabulary) "
               "and its link graph...\n";
  CorpusParams cp;  // paper defaults
  const Corpus corpus = Corpus::synthesize(cp);

  ExperimentConfig cfg;
  cfg.num_docs = cp.num_docs;
  cfg.num_peers = kPeers;
  cfg.epsilon = 1e-3;
  const StandardExperiment exp(cfg);

  std::cout << "Computing pageranks with the distributed engine...\n";
  const auto outcome = exp.run_distributed();
  std::cout << "  converged in " << outcome.run.passes << " passes, "
            << format_count(outcome.messages) << " messages\n";

  std::cout << "Publishing ranks into the term-partitioned index...\n";
  ChordRing ring(kPeers);
  DistributedIndex index(corpus, ring);
  std::vector<PeerId> owner(cp.num_docs);
  for (NodeId d = 0; d < cp.num_docs; ++d) {
    owner[d] = exp.placement().peer_of(d);
  }
  TrafficMeter index_meter;
  index.publish_ranks(outcome.ranks, owner, &index_meter);
  std::cout << "  " << format_count(index.total_postings())
            << " postings, "
            << format_count(index_meter.messages())
            << " index update messages\n\n";

  // Queries: from argv, or a generated demo workload.
  std::vector<std::vector<TermId>> queries;
  if (argc > 2) {
    std::vector<TermId> q;
    for (int i = 1; i < argc; ++i) {
      q.push_back(static_cast<TermId>(std::stoul(argv[i])));
    }
    queries.push_back(q);
  } else {
    queries = generate_queries(
        corpus, {.term_pool = 100, .num_queries = 5, .terms_per_query = 2});
    const auto q3 = generate_queries(
        corpus, {.term_pool = 100, .num_queries = 5, .terms_per_query = 3});
    queries.insert(queries.end(), q3.begin(), q3.end());
  }

  SearchEngine engine(index);
  SearchPolicy top10;
  top10.forward_fraction = 0.10;
  SearchPolicy top10_bloom = top10;
  top10_bloom.bloom_prefilter = true;

  TextTable table({"Query", "Hits (baseline)", "IDs moved (baseline)",
                   "Hits (top-10%)", "IDs moved (top-10%)",
                   "IDs moved (top-10%+bloom)", "Reduction"});
  for (const auto& q : queries) {
    std::string label;
    for (const TermId t : q) {
      label += (label.empty() ? "t" : "&t") + std::to_string(t);
    }
    const auto base = engine.run_query(q, kForwardEverything);
    const auto inc = engine.run_query(q, top10);
    const auto bloom = engine.run_query(q, top10_bloom);
    table.add_row(
        {label, format_count(base.hits.size()),
         format_count(base.ids_transferred), format_count(inc.hits.size()),
         format_count(inc.ids_transferred),
         format_count(bloom.ids_transferred),
         format_fixed(static_cast<double>(base.ids_transferred) /
                          static_cast<double>(std::max<std::uint64_t>(
                              1, inc.ids_transferred)),
                      1) +
             "x"});
  }
  table.print(std::cout);
  std::cout << "\nThe top-10% policy returns the highest-pagerank hits "
               "while moving ~10x fewer document ids (the paper's "
               "Table 6); more hits can be fetched incrementally on "
               "demand.\n";
  return 0;
}
