// Incremental updates: documents entering and leaving a converged
// network (§3.1, §4.7, Figure 2).
//
// Part 1 replays the paper's Figure 2 example exactly.
// Part 2 inserts and deletes documents in a live 10k-document system and
// shows how few update messages each change costs compared with a full
// recomputation.
//
// Build & run:  ./build/examples/incremental_updates

#include <iostream>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "graph/generator.hpp"
#include "graph/mutable_digraph.hpp"
#include "pagerank/centralized.hpp"
#include "pagerank/incremental.hpp"
#include "pagerank/quality.hpp"

namespace {

void figure2_walkthrough() {
  using namespace dprank;
  std::cout << "--- Figure 2: increment propagation ---\n"
            << "G has rank 1.0 and links to H, I, J; H links to K and L.\n";
  const Digraph g = figure2_graph();
  PagerankOptions options;
  options.damping = 1.0;  // match the paper's illustration
  options.epsilon = 1e-9;
  std::vector<double> ranks(6, 0.0);
  IncrementalPagerank engine(g, ranks, options);
  (void)engine.seed_and_propagate(0);
  const char* names = "GHIJKL";
  for (dprank::NodeId v = 1; v < 6; ++v) {
    std::cout << "  " << names[v] << " received "
              << format_sig(ranks[v], 4) << "\n";
  }
  std::cout << "(1/3 at G's out-links, 1/6 after H forwards — the paper's "
               "figure.)\n\n";
}

void live_system_demo() {
  using namespace dprank;
  std::cout << "--- Live inserts/deletes on a converged 10k system ---\n";
  const Digraph base = paper_graph(10'000);
  MutableDigraph graph(base);
  std::vector<double> ranks =
      centralized_pagerank(base, 0.85, 1e-12).ranks;

  PagerankOptions options;
  options.epsilon = 1e-5;

  Rng rng(7);
  TextTable table({"Operation", "Update messages", "Docs touched",
                   "Longest chain"});

  // Insert five new documents, each linking to a few random existing ones.
  std::vector<NodeId> inserted;
  for (int i = 0; i < 5; ++i) {
    std::vector<NodeId> links;
    for (int l = 0; l < 3; ++l) {
      links.push_back(static_cast<NodeId>(rng.bounded(base.num_nodes())));
    }
    NodeId id = 0;
    const auto stats = insert_document(graph, ranks, links, options, &id);
    inserted.push_back(id);
    table.add_row({"insert doc-" + std::to_string(id),
                   format_count(stats.updates_delivered),
                   format_count(stats.nodes_covered),
                   std::to_string(stats.path_length)});
  }

  // Delete two of them again.
  for (int i = 0; i < 2; ++i) {
    const NodeId id = inserted[static_cast<std::size_t>(i)];
    const auto stats = delete_document(graph, ranks, id, options);
    table.add_row({"delete doc-" + std::to_string(id),
                   format_count(stats.updates_delivered),
                   format_count(stats.nodes_covered),
                   std::to_string(stats.path_length)});
  }
  table.print(std::cout);

  // Verify the incrementally maintained ranks against a full recompute.
  const Digraph final_graph = graph.freeze();
  auto exact = centralized_pagerank(final_graph, 0.85, 1e-12).ranks;
  for (int i = 0; i < 2; ++i) {
    exact[inserted[static_cast<std::size_t>(i)]] = 0.0;  // deleted docs
  }
  const auto q = summarize_quality(ranks, exact);
  std::cout << "\nIncrementally maintained ranks vs full recompute: max "
               "relative error "
            << format_sig(q.max, 3) << ", avg " << format_sig(q.avg, 3)
            << ".\n"
            << "A full distributed recompute would cost ~100k+ messages; "
               "each insert cost the handful above — the paper's "
               "continuously-accurate-pageranks story.\n";
}

}  // namespace

int main() {
  figure2_walkthrough();
  live_system_demo();
  return 0;
}
